"""Subscriptions: conjunctions of range constraints (Section 3.2).

A subscription σ is a conjunction of constraints over numeric
attributes; disjunctions are expressed as separate subscriptions.  Each
constraint is an inclusive range ``[low, high]`` (an equality constraint
has ``low == high``).  A subscription may constrain only a subset of the
attributes — a *partially defined* subscription in the paper's terms;
unconstrained attributes match any value.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.errors import DataModelError
from repro.core.events import Event, EventSpace

_subscription_ids = itertools.count(1)


@dataclasses.dataclass(frozen=True)
class Constraint:
    """An inclusive range constraint σ.cᵢ on one attribute.

    Attributes:
        attribute: Index of the constrained attribute in the space.
        low: Smallest matching value.
        high: Largest matching value (``low == high`` is equality).
    """

    attribute: int
    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise DataModelError(
                f"constraint range [{self.low}, {self.high}] is empty"
            )
        if self.low < 0:
            raise DataModelError(f"constraint low {self.low} is negative")

    @property
    def span(self) -> int:
        """Number of matching values rᵢ = high - low + 1."""
        return self.high - self.low + 1

    def satisfies(self, value: int) -> bool:
        """True if ``value`` lies within the range."""
        return self.low <= value <= self.high

    def selectivity(self, domain_size: int) -> float:
        """The fraction rᵢ/|Ωᵢ| of the domain this constraint admits.

        Smaller is more selective (Mapping 3 keys off the minimum).
        """
        return self.span / domain_size


@dataclasses.dataclass(frozen=True)
class Subscription:
    """A conjunction of constraints over an event space.

    Attributes:
        space: The event space the subscription ranges over.
        constraints: One constraint per *constrained* attribute, at most
            one per attribute (a conjunction of two ranges on the same
            attribute collapses to their intersection — callers do that).
        subscription_id: Unique id; rendezvous stores are keyed by it.
    """

    space: EventSpace
    constraints: tuple[Constraint, ...]
    subscription_id: int = dataclasses.field(
        default_factory=lambda: next(_subscription_ids)
    )

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for constraint in self.constraints:
            if not 0 <= constraint.attribute < self.space.dimensions:
                raise DataModelError(
                    f"constraint on attribute {constraint.attribute} outside "
                    f"{self.space.dimensions}-dimensional space"
                )
            if constraint.attribute in seen:
                raise DataModelError(
                    f"multiple constraints on attribute {constraint.attribute}"
                )
            seen.add(constraint.attribute)
            attribute = self.space.attributes[constraint.attribute]
            attribute.validate_value(constraint.low)
            attribute.validate_value(constraint.high)

    @classmethod
    def build(
        cls, space: EventSpace, **ranges: "tuple[int, int] | int | str"
    ) -> "Subscription":
        """Convenience constructor from attribute names.

        Args:
            space: The event space.
            **ranges: ``name=(low, high)`` range constraints,
                ``name=value`` equality constraints, or ``name="text"``
                equality on a string attribute (hashed, footnote 2).
                Range constraints over string attributes are rejected —
                hashing does not preserve order.

        Example:
            >>> space = EventSpace.uniform(("a1", "a2"), 8)
            >>> sigma = Subscription.build(space, a1=(0, 1), a2=(4, 6))
            >>> len(sigma.constraints)
            2
        """
        constraints = []
        for name, bounds in ranges.items():
            index = space.index_of(name)
            attribute = space.attributes[index]
            if isinstance(bounds, str):
                low = high = attribute.coerce(bounds)
            elif isinstance(bounds, int):
                low = high = bounds
            else:
                if attribute.is_string:
                    raise DataModelError(
                        f"range constraint on string attribute {name!r}: "
                        "hashed strings are unordered (use equality)"
                    )
                low, high = bounds
            constraints.append(Constraint(attribute=index, low=low, high=high))
        return cls(space=space, constraints=tuple(constraints))

    @property
    def is_partial(self) -> bool:
        """True if some attribute is unconstrained."""
        return len(self.constraints) < self.space.dimensions

    def constraint_on(self, attribute: int) -> Constraint | None:
        """The constraint on the given attribute index, if any."""
        for constraint in self.constraints:
            if constraint.attribute == attribute:
                return constraint
        return None

    def effective_constraint(self, attribute: int) -> Constraint:
        """The constraint on ``attribute``, defaulting to the full domain.

        The mappings treat an unconstrained attribute as a range over
        the whole domain, which is what makes partially defined
        subscriptions expensive under Mappings 1 and 2 (Section 4.2).
        """
        constraint = self.constraint_on(attribute)
        if constraint is not None:
            return constraint
        domain = self.space.attributes[attribute]
        return Constraint(attribute=attribute, low=0, high=domain.size - 1)

    def most_selective_attribute(self) -> int:
        """Index of the attribute with minimal rᵢ/|Ωᵢ| (Mapping 3).

        Only explicitly constrained attributes are considered; an
        unconstrained attribute has selectivity 1 and can never win
        (unless the subscription is empty, which is rejected upstream).
        Ties break toward the lowest attribute index, deterministically
        across all nodes (the mapping must be computed identically
        system-wide, Section 4.2's "Discussion").
        """
        cached = self.__dict__.get("_most_selective")
        if cached is not None:
            return cached
        if not self.constraints:
            raise DataModelError("subscription with no constraints")
        # Explicit loop instead of min(key=lambda ...): this runs on
        # every index registration, including churn-driven re-adds.
        attributes = self.space.attributes
        best_attribute = -1
        best_selectivity: float | None = None
        for constraint in self.constraints:
            selectivity = constraint.selectivity(
                attributes[constraint.attribute].size
            )
            if best_selectivity is None or selectivity < best_selectivity or (
                selectivity == best_selectivity
                and constraint.attribute < best_attribute
            ):
                best_selectivity = selectivity
                best_attribute = constraint.attribute
        # Frozen dataclass without slots: memoize through __dict__ (the
        # choice is a pure function of the immutable fields).
        object.__setattr__(self, "_most_selective", best_attribute)
        return best_attribute

    def matches(self, event: Event) -> bool:
        """True iff the event satisfies every constraint (e ∈ σ)."""
        if event.space is not self.space and event.space != self.space:
            raise DataModelError("event and subscription spaces differ")
        return all(
            constraint.satisfies(event.values[constraint.attribute])
            for constraint in self.constraints
        )

    def _covering_profile(self) -> tuple[int, dict[int, tuple[int, int]]]:
        """Memoized ``(proper_mask, proper_bounds)`` for :meth:`covers`.

        ``proper_mask`` has bit ``i`` set iff attribute ``i`` carries a
        *proper* constraint — one narrower than the full domain.  A
        full-domain constraint admits every value, so for covering it is
        equivalent to no constraint at all and is dropped here; that is
        what makes the mask comparison below sound.  ``proper_bounds``
        maps each proper attribute to its ``(low, high)`` range.
        """
        cached = self.__dict__.get("_cover_profile")
        if cached is not None:
            return cached
        mask = 0
        bounds: dict[int, tuple[int, int]] = {}
        attributes = self.space.attributes
        for constraint in self.constraints:
            attribute = constraint.attribute
            if (
                constraint.low > 0
                or constraint.high < attributes[attribute].size - 1
            ):
                mask |= 1 << attribute
                bounds[attribute] = (constraint.low, constraint.high)
        profile = (mask, bounds)
        # Frozen dataclass without slots: memoize through __dict__ (a
        # pure function of the immutable fields, like _most_selective).
        object.__setattr__(self, "_cover_profile", profile)
        return profile

    def covers(self, other: "Subscription") -> bool:
        """True iff every event matching ``other`` also matches ``self``.

        The covering relation σ₁ ⊒ σ₂ of the aggregation literature:
        per attribute, σ₁'s effective range (full domain when
        unconstrained) must contain σ₂'s.  It is a partial order up to
        predicate equivalence — reflexive, transitive, and antisymmetric
        modulo full-domain (no-op) constraints.

        Fast path: a single bitmask test rejects the common case where
        ``self`` properly constrains an attribute on which ``other`` is
        effectively unconstrained — ``other`` then admits values outside
        any proper range, so no per-attribute interval check is needed.
        """
        if other is self:
            return True
        if other.space is not self.space and other.space != self.space:
            raise DataModelError("subscription spaces differ")
        mask, bounds = self._covering_profile()
        other_mask, other_bounds = other._covering_profile()
        if mask & ~other_mask:
            return False
        for attribute, (low, high) in bounds.items():
            other_low, other_high = other_bounds[attribute]
            if other_low < low or other_high > high:
                return False
        return True
