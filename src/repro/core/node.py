"""Per-node CB-pub/sub logic (the middle layer of Fig. 2).

A :class:`PubSubNode` lives at every overlay node.  It stores the
subscriptions whose rendezvous keys the node covers, matches incoming
publications against them, emits notifications (immediately, or through
the buffering/collecting machinery of Section 4.3.2), holds replicas of
its ring predecessors' state, and answers the churn state-transfer
callbacks of Section 4.1.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.core.buffering import NotificationBuffer, agent_key_for
from repro.core.payloads import (
    CollectPayload,
    Notification,
    NotifyPayload,
    PublishPayload,
    ReplicaPayload,
    ReplicaRemovePayload,
    StateTransferPayload,
    StoredEntrySnapshot,
    SubscribePayload,
    UnsubscribePayload,
)
from repro.core.rendezvous import StoredSubscription, SubscriptionStore
from repro.overlay.api import NeighborSide, OverlayMessage

if TYPE_CHECKING:
    from repro.core.system import PubSubSystem

#: How many recently seen publication request ids each node remembers
#: (dedup for the aggressive per-key unicast baseline, whose redundant
#: deliveries are a network inefficiency but must not double-match).
SEEN_PUBLICATIONS_LIMIT = 4096


class PubSubNode:
    """The CB-pub/sub layer instance at one overlay node."""

    def __init__(self, node_id: int, system: "PubSubSystem") -> None:
        self.id = node_id
        self._system = system
        self.store = SubscriptionStore(
            system.mapping.space,
            matcher=system.config.matcher,
            covering=system.config.covering,
        )
        self.buffer = NotificationBuffer()
        self.replicas: dict[int, dict[int, StoredEntrySnapshot]] = {}
        self._seen_publications: OrderedDict[int, None] = OrderedDict()
        self._seen_notifications: OrderedDict[tuple[int, int], None] = OrderedDict()
        # None when telemetry is disabled, so the matching hot path
        # pays a single identity check (same guard as the tracer).
        self._match_histogram = (
            system._match_histogram if system.telemetry.enabled else None
        )
        # Load-attribution guard (same discipline); when metering is on
        # the store's matcher also gets this node's work handle, so
        # candidate/verify counts attribute to the rendezvous node.
        self._load = (
            system.telemetry.load if system.telemetry.enabled else None
        )
        if self._load is not None:
            self.store.attach_match_stats(self._load.match_work_for(node_id))

    # -- delivery dispatch -------------------------------------------------

    def on_deliver(self, message: OverlayMessage) -> None:
        """Overlay upcall: dispatch on the application payload type."""
        payload = message.payload
        if isinstance(payload, SubscribePayload):
            self._handle_subscribe(payload, message)
        elif isinstance(payload, UnsubscribePayload):
            self._handle_unsubscribe(payload)
        elif isinstance(payload, PublishPayload):
            self._handle_publication(payload, message)
        elif isinstance(payload, NotifyPayload):
            self._system.deliver_notifications(self.id, payload)
        elif isinstance(payload, CollectPayload):
            self._handle_collect(payload)
        elif isinstance(payload, ReplicaPayload):
            self._handle_replica(payload)
        elif isinstance(payload, ReplicaRemovePayload):
            self._handle_replica_remove(payload)
        elif isinstance(payload, StateTransferPayload):
            self._handle_state_transfer(payload)
        else:
            raise TypeError(f"unexpected payload type {type(payload).__name__}")

    # -- subscriptions -------------------------------------------------------

    def _covered_targets(self, message: OverlayMessage) -> set[int]:
        """The rendezvous keys (of this message) that this node covers."""
        overlay = self._system.overlay
        if message.target_keys is not None:
            return {k for k in message.target_keys if overlay.covers(self.id, k)}
        assert message.key is not None
        return {message.key}

    def _handle_subscribe(
        self, payload: SubscribePayload, message: OverlayMessage
    ) -> None:
        keys_here = self._covered_targets(message)
        now = self._system.now
        entry = self.store.put(payload, keys_here, now)
        if self._load is not None:
            self._load.on_subscription_stored(self.id, keys_here)
        self._system.replicate_entry(self.id, entry.snapshot())

    def _handle_unsubscribe(self, payload: UnsubscribePayload) -> None:
        if self.store.remove(payload.subscription_id):
            self._system.replicate_removal(self.id, payload.subscription_id)

    # -- publications ---------------------------------------------------------

    def _handle_publication(
        self, payload: PublishPayload, message: OverlayMessage
    ) -> None:
        if message.request_id in self._seen_publications:
            return
        self._seen_publications[message.request_id] = None
        while len(self._seen_publications) > SEEN_PUBLICATIONS_LIMIT:
            self._seen_publications.popitem(last=False)

        now = self._system.now
        matched = self.store.match(payload.event, now)
        if self._match_histogram is not None:
            self._match_histogram.observe(len(matched))
        if self._load is not None:
            self._load.on_publication(self.id, self._covered_targets(message))
        if not matched:
            return
        config = self._system.config
        for entry in matched:
            notification = Notification(
                event=payload.event,
                subscription_id=entry.subscription.subscription_id,
                matched_at=self.id,
                published_at=payload.published_at,
            )
            if not config.buffering:
                # Section 4.3.2 baseline: one short message per match.
                # The publication hop that reached this rendezvous
                # (message.trace) becomes the notification root's
                # parent, chaining publish -> match -> notify.
                self._system.send_notification(
                    self.id, entry.subscriber, (notification,),
                    parent_span=message.trace,
                )
                continue
            agent = self._agent_for(entry) if config.collecting else None
            self.buffer.add(
                entry.subscriber,
                entry.subscription.subscription_id,
                agent,
                [notification],
            )

    def _agent_for(self, entry: StoredSubscription) -> int:
        anchor = min(entry.keys_here) if entry.keys_here else self.id
        return agent_key_for(entry.payload.groups, anchor)

    # -- buffering / collecting ----------------------------------------------

    def flush(self) -> None:
        """Periodic buffer flush (Section 4.3.2).

        Batches whose agent key we cover (or that have no agent) are
        merged into one notification message per subscriber ("all the
        matches ... sent in a single message"); the rest advance one
        ring hop toward their agent as COLLECT messages.
        """
        overlay = self._system.overlay
        keyspace = overlay.keyspace
        direct: dict[int, list[Notification]] = {}
        for batch in self.buffer.drain():
            at_agent = batch.agent_key is None or overlay.covers(
                self.id, batch.agent_key
            )
            if at_agent:
                direct.setdefault(batch.subscriber, []).extend(batch.notifications)
                continue
            assert batch.agent_key is not None
            clockwise = keyspace.distance(self.id, batch.agent_key)
            counter = keyspace.distance(batch.agent_key, self.id)
            side = (
                NeighborSide.SUCCESSOR
                if clockwise <= counter
                else NeighborSide.PREDECESSOR
            )
            self._system.send_collect(
                self.id,
                side,
                CollectPayload(
                    subscriber=batch.subscriber,
                    subscription_id=batch.subscription_id,
                    agent_key=batch.agent_key,
                    notifications=tuple(batch.notifications),
                ),
            )
        for subscriber, notifications in direct.items():
            self._system.send_notification(self.id, subscriber, tuple(notifications))

    def _handle_collect(self, payload: CollectPayload) -> None:
        self.buffer.add(
            payload.subscriber,
            payload.subscription_id,
            payload.agent_key,
            payload.notifications,
        )

    def fresh_notifications(
        self, notifications: tuple[Notification, ...]
    ) -> list[Notification]:
        """Filter out (event, subscription) pairs already delivered here.

        Subscriber-side deduplication: under Selective-Attribute an
        event reaches d rendezvous nodes and a subscription stored at
        two of them would be notified twice; the duplicate messages are
        a real network cost (counted by the metrics) but the
        application should see each match once.
        """
        fresh = []
        for notification in notifications:
            dedup_key = (notification.event.event_id, notification.subscription_id)
            if dedup_key in self._seen_notifications:
                continue
            self._seen_notifications[dedup_key] = None
            fresh.append(notification)
        while len(self._seen_notifications) > SEEN_PUBLICATIONS_LIMIT:
            self._seen_notifications.popitem(last=False)
        return fresh

    # -- replication and churn (Section 4.1) -----------------------------------

    def _handle_replica(self, payload: ReplicaPayload) -> None:
        shelf = self.replicas.setdefault(payload.owner, {})
        for snapshot in payload.entries:
            shelf[snapshot.payload.subscription.subscription_id] = snapshot
        if payload.remaining > 1:
            self._system.forward_replica(
                self.id,
                ReplicaPayload(
                    owner=payload.owner,
                    entries=payload.entries,
                    remaining=payload.remaining - 1,
                ),
            )

    def _handle_replica_remove(self, payload: ReplicaRemovePayload) -> None:
        shelf = self.replicas.get(payload.owner)
        if shelf is not None:
            shelf.pop(payload.subscription_id, None)
        if payload.remaining > 1:
            self._system.forward_replica(
                self.id,
                ReplicaRemovePayload(
                    owner=payload.owner,
                    subscription_id=payload.subscription_id,
                    remaining=payload.remaining - 1,
                ),
            )

    def promote_replicas(self, crashed_owner: int) -> list[StoredEntrySnapshot]:
        """Adopt the replicas held for a crashed ring neighbor.

        The crashed node's key interval is now covered by this node, so
        its replicated subscriptions become live entries here.  Returns
        the promoted snapshots so the system can re-replicate them.
        """
        shelf = self.replicas.pop(crashed_owner, {})
        now = self._system.now
        promoted = []
        for snapshot in shelf.values():
            if snapshot.expire_at is not None and now >= snapshot.expire_at:
                continue
            self.store.restore(snapshot)
            promoted.append(snapshot)
        return promoted

    def _handle_state_transfer(self, payload: StateTransferPayload) -> None:
        for snapshot in payload.entries:
            self.store.restore(snapshot)

    def extract_entries_for_range(
        self, key_range: tuple[int, int]
    ) -> list[StoredEntrySnapshot]:
        """Detach the stored keys falling in ``(left, right]`` (churn).

        Entries whose every rendezvous key moved are dropped locally;
        entries that also cover keys outside the range stay (minus the
        moved keys).  Returns snapshots carrying exactly the moved keys.
        """
        moved: list[StoredEntrySnapshot] = []
        if not len(self.store):  # churn probes every node; most are empty
            return moved
        keyspace = self._system.overlay.keyspace
        left, right = key_range
        # Inline ``in_open_closed``: this scan visits every stored entry
        # on every join/leave, so the per-key cost must stay at two int
        # ops.  key in (left, right] <=> 0 < (key-left) <= (right-left),
        # both mod the ring size; left == right means the whole ring.
        size = keyspace.size
        whole = left == right
        span = (right - left) % size
        for entry in self.store.entries():
            if whole:
                in_range = set(entry.keys_here)
            else:
                in_range = {
                    k for k in entry.keys_here if 0 < (k - left) % size <= span
                }
            if not in_range:
                continue
            moved.append(
                StoredEntrySnapshot(
                    payload=entry.payload,
                    keys_here=tuple(sorted(in_range)),
                    expire_at=entry.expire_at,
                )
            )
            self.store.remove_keys(
                entry.subscription.subscription_id, in_range
            )
        return moved
