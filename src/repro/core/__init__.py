"""The content-based publish/subscribe layer (the paper's contribution).

This package implements the *CB-pub/sub* stratum of Fig. 2: it maps the
rich event/subscription language onto overlay keys (the ``ak-mapping``
module, :mod:`repro.core.mappings`), forwards subscriptions and events
to their rendezvous keys, stores subscriptions and matches events at
rendezvous nodes (:mod:`repro.core.rendezvous`), sends notifications
back to subscribers, and manages state movement across node joins,
departures and crashes (:mod:`repro.core.replication`).

Public entry point: :class:`repro.core.system.PubSubSystem`.
"""

from repro.core.client import Disjunction, PubSubClient
from repro.core.events import Attribute, Event, EventSpace
from repro.core.subscriptions import Constraint, Subscription
from repro.core.system import PubSubConfig, PubSubSystem, RoutingMode

__all__ = [
    "Attribute",
    "Event",
    "EventSpace",
    "Constraint",
    "Subscription",
    "Disjunction",
    "PubSubClient",
    "PubSubConfig",
    "PubSubSystem",
    "RoutingMode",
]
