"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``figure`` — regenerate one of the paper's figures and print its
  table (``fig5`` .. ``fig9b``, plus the ``routing`` baseline).
- ``run`` — run a single simulation with explicit knobs and print the
  headline metrics; ``--telemetry``/``--perfetto`` additionally record
  per-hop spans and periodic metric samples and export them.
- ``stats`` — summarize a ``--telemetry`` JSONL export (span counts,
  hop latency, m-cast tree coverage, final instruments, SLO
  percentiles for audited runs).
- ``audit`` — render the delivery-correctness health report from an
  audited export; exits non-zero when violations were recorded.
- ``report`` — load-skew observatory report from a telemetry export
  (terminal heatmap of hot nodes / rendezvous keys, Gini, overload
  events; ``--json`` writes the artifact), the shard execution
  profile with ``--mode shard`` (utilization bars, stall attribution,
  rebalance-advisor cut points from a ``--shard-profile`` run), or —
  with ``--out-dir`` and no path — the full evaluation suite with
  CSVs.
- ``trace`` — pre-generate a workload trace to JSON, or replay one.

Examples::

    python -m repro figure fig5 --subscriptions 300 --publications 300
    python -m repro run --mapping keyspace-split --routing mcast --nodes 500
    python -m repro run --telemetry out.jsonl --perfetto out.trace.json
    python -m repro run --audit --telemetry out.jsonl
    python -m repro stats out.jsonl
    python -m repro audit out.jsonl --report health.txt
    python -m repro report out.jsonl --json load-report.json
    python -m repro run --shards 2 --shard-profile --telemetry out.jsonl
    python -m repro report out.jsonl --mode shard
    python -m repro trace generate --out trace.json --subscriptions 100
    python -m repro trace replay trace.json --mapping selective-attribute
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.core.system import RoutingMode
from repro.experiments import figures
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_table
from repro.experiments.runner import run_experiment
from repro.workload.spec import WorkloadSpec

FIGURES = {
    "fig5": (
        figures.figure5,
        ["mapping", "routing", "sub_hops", "pub_hops", "notify_hops",
         "keys_per_sub", "keys_per_pub"],
    ),
    "fig6": (
        figures.figure6,
        ["selective_attributes", "expiration", "mapping",
         "max_subs_per_node", "mean_subs_per_node"],
    ),
    "fig7": (figures.figure7, ["nodes", "pub_hops", "log2_n"]),
    "fig8": (
        figures.figure8,
        ["selective_attributes", "nodes", "mapping",
         "max_subs_per_node", "mean_subs_per_node"],
    ),
    "fig9a": (
        figures.figure9a,
        ["matching_probability", "variant", "notify_hops_per_pub",
         "notification_batches", "mean_delay"],
    ),
    "fig9b": (
        figures.figure9b,
        ["interval_fraction", "interval_width", "sub_hops", "keys_per_sub"],
    ),
    "routing": (
        figures.baseline_routing,
        ["cache_capacity", "pub_hops", "half_log2_n"],
    ),
}

MAPPING_CHOICES = [
    "attribute-split",
    "keyspace-split",
    "selective-attribute",
    "event-space-partition",
]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Content-based pub/sub over structured overlays (ICDCS 2005) — "
            "experiment runner"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("name", choices=sorted(FIGURES))
    fig.add_argument("--subscriptions", type=int, default=None)
    fig.add_argument("--publications", type=int, default=None)
    fig.add_argument("--nodes", type=int, default=None)
    fig.add_argument("--seed", type=int, default=None)

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("--mapping", choices=MAPPING_CHOICES,
                     default="selective-attribute")
    run.add_argument("--routing", choices=[m.value for m in RoutingMode],
                     default="mcast")
    run.add_argument("--overlay", choices=["chord", "pastry", "can"],
                     default="chord", help="routing substrate")
    run.add_argument("--nodes", type=int, default=500)
    run.add_argument("--subscriptions", type=int, default=300)
    run.add_argument("--publications", type=int, default=300)
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--selective", type=int, default=0,
                     help="number of selective attributes (0-4)")
    run.add_argument("--matching-probability", type=float, default=0.5)
    run.add_argument("--temporal-locality", type=float, default=0.0,
                     help="probability each publication perturbs the previous")
    run.add_argument("--ttl", type=float, default=None,
                     help="subscription expiration in seconds")
    run.add_argument("--buffering", action="store_true")
    run.add_argument("--collecting", action="store_true")
    run.add_argument("--buffer-period", type=float, default=5.0)
    run.add_argument("--discretization", type=int, default=1,
                     help="interval width (1 = off)")
    run.add_argument("--replication", type=int, default=0)
    run.add_argument("--shards", type=int, default=1,
                     help="parallel shard workers (1 = serial kernel)")
    run.add_argument("--shard-profile", action="store_true",
                     help="attach the shard execution profiler (per-round "
                          "busy/stall timelines, critical-path summary, "
                          "rebalance advisor); requires --shards > 1")
    run.add_argument("--shard-cuts", metavar="OFFSETS", default=None,
                     help="comma-separated arc start offsets for the ring "
                          "partition (e.g. 0,1500,2600 — the rebalance "
                          "advisor's suggested cut points); requires "
                          "--shards > 1")
    run.add_argument("--matcher", choices=["grid", "radix", "brute", "vector"],
                     default="grid",
                     help="rendezvous matching engine")
    run.add_argument("--no-covering", action="store_true",
                     help="disable subscription covering at rendezvous "
                          "stores (default: on unless --matcher brute, "
                          "which always runs uncollapsed as the oracle)")
    run.add_argument("--cache", type=int, default=128,
                     help="location cache capacity (0 = off)")
    run.add_argument("--telemetry", metavar="PATH", default=None,
                     help="record telemetry and export it as JSONL")
    run.add_argument("--perfetto", metavar="PATH", default=None,
                     help="export a Chrome trace-event JSON "
                          "(open at https://ui.perfetto.dev)")
    run.add_argument("--audit", action="store_true",
                     help="run the online invariant auditor (structural "
                          "probes + delivery-correctness oracle)")
    run.add_argument("--audit-period", type=float, default=None,
                     help="seconds between structural probes "
                          "(default: horizon / 12)")

    stats = sub.add_parser(
        "stats", help="summarize a telemetry JSONL export"
    )
    stats.add_argument("path")

    audit = sub.add_parser(
        "audit", help="health report from an audited telemetry export"
    )
    audit.add_argument("path")
    audit.add_argument("--report", metavar="OUT", default=None,
                       help="also write the report to this file")

    report = sub.add_parser(
        "report",
        help="load-skew report from a telemetry export, or (with "
             "--out-dir and no path) the full evaluation suite",
    )
    report.add_argument("path", nargs="?", default=None,
                        help="telemetry JSONL export; when given, print "
                             "the rendezvous load-skew heatmap instead of "
                             "running the evaluation suite")
    report.add_argument("--mode", choices=["load", "shard"], default="load",
                        help="report flavor for a telemetry export: 'load' "
                             "(rendezvous load-skew heatmap) or 'shard' "
                             "(shard execution profile: utilization bars, "
                             "stall attribution, suggested cut points)")
    report.add_argument("--json", metavar="OUT", default=None,
                        help="also write the load report as JSON "
                             "(load-report mode only)")
    report.add_argument("--top", type=int, default=10,
                        help="hot entities shown per scope "
                             "(load-report mode only)")
    report.add_argument("--out-dir", default=None,
                        help="suite mode: directory for CSVs and SUMMARY.txt")
    report.add_argument("--scale", choices=["quick", "default", "paper"],
                        default="quick")
    report.add_argument("--only", nargs="*", default=None,
                        help="subset of figures (e.g. fig5 fig9b)")

    trace = sub.add_parser("trace", help="generate or replay a trace")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    generate = trace_sub.add_parser("generate")
    generate.add_argument("--out", required=True)
    generate.add_argument("--subscriptions", type=int, default=100)
    generate.add_argument("--publications", type=int, default=100)
    generate.add_argument("--nodes", type=int, default=500)
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--ttl", type=float, default=None)
    replay = trace_sub.add_parser("replay")
    replay.add_argument("path")
    replay.add_argument("--mapping", choices=MAPPING_CHOICES,
                        default="selective-attribute")
    replay.add_argument("--routing", choices=[m.value for m in RoutingMode],
                        default="mcast")
    replay.add_argument("--nodes", type=int, default=500)
    replay.add_argument("--seed", type=int, default=42)
    return parser


def _command_figure(args: argparse.Namespace) -> int:
    function, columns = FIGURES[args.name]
    kwargs = {}
    for knob in ("subscriptions", "publications", "nodes", "seed"):
        value = getattr(args, knob, None)
        if value is not None and knob in function.__code__.co_varnames:
            kwargs[knob] = value
    rows = function(**kwargs)
    print(
        render_table(
            columns,
            [[row.get(column) for column in columns] for row in rows],
            title=f"{args.name} — see EXPERIMENTS.md for the paper's shapes",
        )
    )
    return 0


def _command_run(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError

    shard_cuts = None
    if args.shard_cuts is not None:
        try:
            shard_cuts = tuple(
                int(part) for part in args.shard_cuts.split(",") if part
            )
        except ValueError:
            print(f"error: --shard-cuts expects comma-separated integers, "
                  f"got {args.shard_cuts!r}", file=sys.stderr)
            return 2
    workload = WorkloadSpec(
        selective_attributes=tuple(range(args.selective)),
        matching_probability=args.matching_probability,
        subscription_ttl=args.ttl,
        temporal_locality=args.temporal_locality,
    )
    try:
        config = ExperimentConfig(
            mapping=args.mapping,
            routing=RoutingMode(args.routing),
            overlay=args.overlay,
            nodes=args.nodes,
            cache_capacity=args.cache,
            seed=args.seed,
            subscriptions=args.subscriptions,
            publications=args.publications,
            workload=workload,
            buffering=args.buffering or args.collecting,
            collecting=args.collecting,
            buffer_period=args.buffer_period,
            discretization_width=args.discretization,
            replication_factor=args.replication,
            matcher=args.matcher,
            covering=False if args.no_covering else None,
            shards=args.shards,
            shard_profile=args.shard_profile,
            shard_cuts=shard_cuts,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    telemetry = None
    if args.telemetry or args.perfetto or args.audit:
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
    audit_config = None
    if args.audit:
        from repro.audit import AuditConfig

        audit_config = AuditConfig(probe_period=args.audit_period)
    result = run_experiment(config, telemetry=telemetry, audit=audit_config)
    rows = [
        ["subscriptions sent", result.subscriptions_sent],
        ["publications sent", result.publications_sent],
        ["keys per subscription", result.keys_per_subscription],
        ["keys per publication", result.keys_per_publication],
        ["hops per subscription", result.sub_hops.mean],
        ["hops per publication", result.pub_hops.mean],
        ["hops per notification", result.notify_hops.mean],
        ["notification hops per publication",
         result.notification_hops_per_publication],
        ["max subscriptions per node", result.max_subscriptions_per_node],
        ["mean subscriptions per node", result.mean_subscriptions_per_node],
        ["mean notification delay [s]", result.notification_delay.mean],
    ]
    report = result.audit
    if report is not None:
        rows.append(["audit: publications audited", report.publications_audited])
        rows.append(["audit: violations", len(report.violations)])
    print(render_table(["metric", "value"], rows,
                       title=f"{args.mapping} / {args.routing} / n={args.nodes}"))
    if report is not None and not report.ok:
        for vtype, count in sorted(report.counts_by_type().items()):
            print(f"audit violation: {vtype} x{count}")
    shard_outcome = result.shard
    if shard_outcome is not None and shard_outcome.profile is not None:
        from repro.telemetry.profile import (
            build_shard_report,
            render_shard_report,
        )

        shard_view = build_shard_report(
            shard_outcome.profile.profile_records()
        )
        if shard_view is not None:
            print()
            print(render_shard_report(shard_view))
    if telemetry is not None:
        from repro.telemetry.export import write_chrome_trace, write_jsonl

        if args.telemetry:
            count = write_jsonl(telemetry, args.telemetry)
            print(f"wrote {count} telemetry records to {args.telemetry}")
        if args.perfetto:
            count = write_chrome_trace(telemetry, args.perfetto)
            print(f"wrote {count} trace events to {args.perfetto} "
                  "(open at https://ui.perfetto.dev)")
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    from repro.experiments.report import render_table as _render
    from repro.telemetry.export import load_jsonl
    from repro.telemetry.tracing import (
        DROPPED,
        LOST,
        ROOT,
        delivery_coverage,
    )

    dump = load_jsonl(args.path)
    spans = dump.spans
    by_kind: dict[str, int] = {}
    hop_latencies: list[float] = []
    dropped = lost = roots = 0
    for span in spans:
        by_kind[span.kind] = by_kind.get(span.kind, 0) + 1
        if span.status == ROOT:
            roots += 1
        elif span.status == DROPPED:
            dropped += 1
        elif span.status == LOST:
            lost += 1
        elif span.t_recv is not None:
            hop_latencies.append(span.t_recv - span.t_send)
    coverage = delivery_coverage(spans, dump.deliveries)
    complete = sum(1 for ok in coverage.values() if ok)
    rows = [
        ["spans", len(spans)],
        ["requests (root spans)", roots],
        ["deliveries", len(dump.deliveries)],
        ["hops dropped (dead destination)", dropped],
        ["hops lost (loss model)", lost],
        ["mean hop latency [s]",
         sum(hop_latencies) / len(hop_latencies) if hop_latencies else 0.0],
        ["requests with deliveries", len(coverage)],
        ["  ...with complete causal trees", complete],
        ["metric samples", len(dump.samples)],
        ["final counters", len(dump.counters)],
        ["final gauges", len(dump.gauges)],
        ["final histograms", len(dump.histograms)],
    ]
    for kind in sorted(by_kind):
        rows.append([f"spans[{kind}]", by_kind[kind]])
    if dump.violations or dump.probes:
        rows.append(["audit violations", len(dump.violations)])
        rows.append(["audit probes", len(dump.probes)])
    version = dump.meta.get("version", 1)
    if not dump.loads and version < 3:
        rows.append([
            "load observatory",
            f"n/a (format v{version} predates load records; re-run with "
            "--telemetry on v3+)",
        ])
    shard_imbalances = [
        r for r in dump.overloads if r.get("scope") == "shard"
    ]
    if shard_imbalances:
        worst = max(shard_imbalances, key=lambda r: r.get("ratio", 0.0))
        rows.append([
            "shard load imbalance",
            f"{worst['ratio']:.2f}x max/median "
            f"(threshold {worst['threshold']:.1f}x; loads {worst['loads']})",
        ])
    if dump.profiles:
        run_profile = next(
            (r for r in dump.profiles if r.get("scope") == "run"), None
        )
        if run_profile is not None:
            rows.append(["shard profile rounds", run_profile["rounds"]])
            rows.append([
                "shard profile wall [s]",
                f"{run_profile['total_wall_s']:.2f}",
            ])
            rows.append([
                "shard critical path",
                f"shard {run_profile['dominant_shard']} "
                f"({run_profile['dominant_phase']}-bound)",
            ])
        advice = next(
            (r for r in dump.profiles if r.get("scope") == "advice"), None
        )
        if advice is not None:
            rows.append([
                "shard rebalance advice (cuts)",
                ",".join(map(str, advice["cuts"])),
            ])
    if dump.loads:
        node_records = [r for r in dump.loads if r.get("scope") == "node"]
        key_records = [r for r in dump.loads if r.get("scope") == "key"]
        rows.append(["load records (nodes)", len(node_records)])
        rows.append(["load records (keys)", len(key_records)])
        rows.append(["skew samples", len(dump.skews)])
        rows.append(["overload events", len(dump.overloads)])
        final_node_skews = [
            r for r in dump.skews if r.get("scope") == "node"
        ]
        if final_node_skews:
            last = final_node_skews[-1]
            rows.append(["node-load gini (final)", f"{last['gini']:.4f}"])
            rows.append(
                ["node-load p99/mean (final)", f"{last['p99_mean_ratio']:.2f}"]
            )
        if key_records:
            hottest = max(
                key_records,
                key=lambda r: (
                    r.get("subscriptions", 0) + r.get("publications", 0),
                    -r["id"],
                ),
            )
            rows.append([
                "hottest rendezvous key",
                f"{hottest['id']} "
                f"(subs={hottest.get('subscriptions', 0)}, "
                f"pubs={hottest.get('publications', 0)})",
            ])
        cover_roots = sum(r.get("cover_roots", 0) for r in node_records)
        cover_collapsed = sum(
            r.get("cover_collapsed", 0) for r in node_records
        )
        if cover_roots or cover_collapsed:
            rows.append(["covering roots (matcher-resident)", cover_roots])
            rows.append(["covering collapsed installs", cover_collapsed])
            rows.append([
                "covering promotions",
                sum(r.get("cover_promotions", 0) for r in node_records),
            ])
    for record in sorted(
        dump.histograms, key=lambda r: (r["name"], sorted(r["labels"].items()))
    ):
        if not record["count"]:
            continue
        labels = ",".join(f"{k}={v}" for k, v in sorted(record["labels"].items()))
        name = f"{record['name']}{{{labels}}}" if labels else record["name"]
        # p99 is absent from version-1 exports.
        p99 = record.get("p99")
        rows.append([
            f"  {name} p50/p95/p99",
            f"{record['p50']:.4g} / {record['p95']:.4g} / "
            + (f"{p99:.4g}" if p99 is not None else "n/a"),
        ])
    print(_render(["metric", "value"], rows, title=f"telemetry in {args.path}"))
    return 0 if complete == len(coverage) else 1


def _command_audit(args: argparse.Namespace) -> int:
    from repro.audit import report_from_dump
    from repro.telemetry.export import load_jsonl

    dump = load_jsonl(args.path)
    text, has_audit_data = report_from_dump(dump, source=str(args.path))
    print(text)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.write("\n")
        print(f"wrote health report to {args.report}")
    if not has_audit_data:
        print("error: export has no audit records (run with --audit)",
              file=sys.stderr)
        return 2
    return 1 if dump.violations else 0


def _command_trace(args: argparse.Namespace) -> int:
    from repro.workload.trace import Trace

    if args.trace_command == "generate":
        spec = WorkloadSpec(subscription_ttl=args.ttl)
        rng = random.Random(args.seed)
        node_ids = rng.sample(range(1 << 13), args.nodes)
        trace = Trace.generate(
            spec, rng, node_ids,
            subscriptions=args.subscriptions,
            publications=args.publications,
        )
        trace.save(args.out)
        print(f"wrote {len(trace)} operations to {args.out}")
        return 0

    # replay
    from repro.core.mappings import make_mapping
    from repro.core.system import PubSubConfig, PubSubSystem
    from repro.overlay.api import MessageKind
    from repro.overlay.chord import ChordOverlay
    from repro.overlay.ids import KeySpace
    from repro.sim import Simulator

    trace = Trace.load(args.path)
    sim = Simulator()
    keyspace = KeySpace(13)
    overlay = ChordOverlay(sim, keyspace)
    overlay.build_ring(random.Random(args.seed).sample(range(keyspace.size),
                                                       args.nodes))
    system = PubSubSystem(
        sim,
        overlay,
        make_mapping(args.mapping, trace.space, keyspace),
        PubSubConfig(routing=RoutingMode(args.routing)),
    )
    delivered = []
    system.set_global_notify_handler(lambda nid, ns: delivered.extend(ns))
    trace.replay(system)
    messages = system.recorder.messages
    rows = [
        ["operations replayed", len(trace)],
        ["notifications delivered", len(delivered)],
        ["hops per subscription",
         messages.mean_hops_per_request(MessageKind.SUBSCRIPTION)],
        ["hops per publication",
         messages.mean_hops_per_request(MessageKind.PUBLICATION)],
    ]
    print(render_table(["metric", "value"], rows, title=f"replay of {args.path}"))
    return 0


def _command_report(args: argparse.Namespace) -> int:
    if args.path is not None:
        import json

        from repro.telemetry.export import load_jsonl
        from repro.telemetry.loadreport import (
            build_load_report,
            render_load_report,
        )

        dump = load_jsonl(args.path)
        version = dump.meta.get("version", 1)
        if args.mode == "shard":
            from repro.telemetry.profile import (
                build_shard_report,
                render_shard_report,
            )

            shard_view = build_shard_report(dump)
            if shard_view is None:
                if version < 4:
                    print(
                        f"error: export is format v{version}, which predates "
                        "profile records (v4+); re-run with --shards K "
                        "--shard-profile --telemetry",
                        file=sys.stderr,
                    )
                else:
                    print(
                        "error: export has no shard profile records (run "
                        "with --shards K --shard-profile --telemetry)",
                        file=sys.stderr,
                    )
                return 2
            print(render_shard_report(shard_view, source=str(args.path)))
            return 0
        if not dump.loads:
            if version < 3:
                print(
                    f"error: export is format v{version}, which predates "
                    "load records (v3+); re-run with --telemetry on the "
                    "current build",
                    file=sys.stderr,
                )
            else:
                print(
                    "error: export has no load records (run with "
                    "--telemetry on format v3+)",
                    file=sys.stderr,
                )
            return 2
        report = build_load_report(dump, top=args.top)
        print(render_load_report(report, source=str(args.path)))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2)
                handle.write("\n")
            print(f"wrote load report to {args.json}")
        return 0

    if args.out_dir is None:
        print("error: either a telemetry JSONL path (load report) or "
              "--out-dir (evaluation suite) is required", file=sys.stderr)
        return 2
    from repro.experiments.suite import SCALES, run_suite

    only = tuple(args.only) if args.only else None
    run_suite(args.out_dir, scale=SCALES[args.scale], only=only)
    print(f"wrote CSVs and SUMMARY.txt to {args.out_dir}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "figure":
        return _command_figure(args)
    if args.command == "run":
        return _command_run(args)
    if args.command == "stats":
        return _command_stats(args)
    if args.command == "audit":
        return _command_audit(args)
    if args.command == "report":
        return _command_report(args)
    if args.command == "trace":
        return _command_trace(args)
    return 2  # unreachable: argparse enforces the choices


if __name__ == "__main__":
    sys.exit(main())
