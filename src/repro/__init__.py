"""repro — Content-Based Publish-Subscribe over Structured Overlay Networks.

A faithful, self-contained reproduction of Baldoni, Marchetti,
Virgillito and Vitenberg, *"Content-Based Publish-Subscribe over
Structured Overlay Networks"* (ICDCS 2005): a content-based pub/sub
layer with three stateless subscription/event-to-key mappings, running
over a discrete-event Chord simulator extended with the paper's
``m-cast`` one-to-many primitive, plus the notification
buffering/collecting and mapping-discretization optimizations and the
full Section 5 evaluation harness.

Quickstart::

    from repro import (
        Simulator, KeySpace, ChordOverlay, EventSpace, Subscription,
        PubSubSystem, make_mapping,
    )

    sim = Simulator()
    overlay = ChordOverlay(sim, KeySpace(13))
    overlay.build_ring(range(0, 8192, 16))
    space = EventSpace.uniform(("price", "volume"), 1_000_001)
    mapping = make_mapping("selective-attribute", space, overlay.keyspace)
    system = PubSubSystem(sim, overlay, mapping)
    system.set_global_notify_handler(lambda node, ns: print(node, ns))
    system.subscribe(16, Subscription.build(space, price=(100, 200)))
    system.publish(4096, space.make_event(price=150, volume=7))
    sim.run()
"""

from repro.core import (
    Attribute,
    Constraint,
    Event,
    EventSpace,
    PubSubConfig,
    PubSubSystem,
    RoutingMode,
    Subscription,
)
from repro.core.mappings import (
    AttributeSplitMapping,
    Discretization,
    KeySpaceSplitMapping,
    SelectiveAttributeMapping,
    make_mapping,
)
from repro.errors import (
    ConfigurationError,
    DataModelError,
    MappingError,
    OverlayError,
    ReproError,
)
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import PeriodicTimer, RandomStreams, Simulator
from repro.workload import WorkloadDriver, WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "Constraint",
    "Event",
    "EventSpace",
    "PubSubConfig",
    "PubSubSystem",
    "RoutingMode",
    "Subscription",
    "AttributeSplitMapping",
    "Discretization",
    "KeySpaceSplitMapping",
    "SelectiveAttributeMapping",
    "make_mapping",
    "ConfigurationError",
    "DataModelError",
    "MappingError",
    "OverlayError",
    "ReproError",
    "ChordOverlay",
    "KeySpace",
    "PeriodicTimer",
    "RandomStreams",
    "Simulator",
    "WorkloadDriver",
    "WorkloadSpec",
    "__version__",
]
