"""Synthetic workload generation per the paper's Section 5.1.

The evaluation workload: a 4-attribute integer event space with values
in [0, ATTR_MAX = 1,000,000]; each subscription constrains every
attribute with a range whose width is uniform in [1, X] — X being 3% of
ATTR_MAX for *non-selective* attributes and 0.1% for *selective* ones —
centered uniformly (non-selective) or Zipf (selective); subscriptions
arrive at a regular period (5 s), publications as a Poisson process
(mean 5 s), interleaved; publications match at least one live
subscription with a configurable *matching probability* (default 0.5);
stored subscriptions expire after a configurable time, simulating
unsubscriptions.
"""

from repro.workload.spec import DEFAULT_ATTR_MAX, WorkloadSpec
from repro.workload.generator import EventGenerator, SubscriptionGenerator
from repro.workload.driver import WorkloadDriver
from repro.workload.churn import ChurnDriver, ChurnSpec
from repro.workload.trace import Trace, TraceOp
from repro.workload.zipf import ZipfSampler

__all__ = [
    "DEFAULT_ATTR_MAX",
    "WorkloadSpec",
    "EventGenerator",
    "SubscriptionGenerator",
    "WorkloadDriver",
    "ChurnDriver",
    "ChurnSpec",
    "Trace",
    "TraceOp",
    "ZipfSampler",
]
