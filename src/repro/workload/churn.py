"""Continuous-churn injection (the adaptiveness claim of Section 4.1).

The paper argues the architecture is "adaptive to node failures and
joins" because the overlay re-maps keys automatically and state follows
via transfer/replication.  :class:`ChurnDriver` makes that measurable:
it joins, removes and crashes nodes as Poisson processes while a
workload runs, so harnesses can report delivery ratios as a function of
churn intensity.
"""

from __future__ import annotations

import dataclasses
import random

from repro.core.system import PubSubSystem
from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator


@dataclasses.dataclass(frozen=True)
class ChurnSpec:
    """Churn intensities, as mean seconds between events (0 = off).

    Attributes:
        join_period: Mean time between node joins.
        leave_period: Mean time between graceful departures.
        crash_period: Mean time between crashes.
        min_ring_size: Removals are suppressed below this population.
    """

    join_period: float = 0.0
    leave_period: float = 0.0
    crash_period: float = 0.0
    min_ring_size: int = 8

    def __post_init__(self) -> None:
        for period in (self.join_period, self.leave_period, self.crash_period):
            if period < 0:
                raise ConfigurationError("churn periods must be >= 0")
        if self.min_ring_size < 2:
            raise ConfigurationError("min_ring_size must be >= 2")


class ChurnDriver:
    """Schedules Poisson join/leave/crash events against a system.

    Args:
        system: The pub/sub system under churn.
        spec: Churn intensities.
        rng: Randomness for arrivals and victim/id selection.
        protected: Node ids never removed or crashed (e.g. the
            subscriber/publisher endpoints a harness is measuring).
    """

    def __init__(
        self,
        system: PubSubSystem,
        spec: ChurnSpec,
        rng: random.Random,
        protected: set[int] | None = None,
    ) -> None:
        self._system = system
        self._spec = spec
        self._rng = rng
        self._protected = set(protected or ())
        self._running = False
        self.joins = 0
        self.leaves = 0
        self.crashes = 0

    @property
    def sim(self) -> Simulator:
        return self._system.sim

    @property
    def events(self) -> int:
        """Total churn events injected so far."""
        return self.joins + self.leaves + self.crashes

    def start(self) -> None:
        """Arm the churn processes."""
        if self._running:
            return
        self._running = True
        if self._spec.join_period > 0:
            self._schedule(self._spec.join_period, self._do_join)
        if self._spec.leave_period > 0:
            self._schedule(self._spec.leave_period, self._do_leave)
        if self._spec.crash_period > 0:
            self._schedule(self._spec.crash_period, self._do_crash)

    def stop(self) -> None:
        """Disarm; already-scheduled events become no-ops."""
        self._running = False

    def _schedule(self, period: float, action) -> None:
        self.sim.schedule(self._rng.expovariate(1.0 / period), action)

    def _removable(self) -> list[int]:
        ids = self._system.overlay.node_ids()
        if len(ids) <= self._spec.min_ring_size:
            return []
        protected = self._protected
        return [n for n in ids if n not in protected]

    def _do_join(self) -> None:
        if not self._running:
            return
        overlay = self._system.overlay
        for _ in range(16):  # find a free id
            candidate = self._rng.randrange(overlay.keyspace.size)
            if not overlay.is_alive(candidate):
                self._system.add_node(candidate)
                self.joins += 1
                break
        self._schedule(self._spec.join_period, self._do_join)

    def _do_leave(self) -> None:
        if not self._running:
            return
        candidates = self._removable()
        if candidates:
            self._system.remove_node(self._rng.choice(candidates))
            self.leaves += 1
        self._schedule(self._spec.leave_period, self._do_leave)

    def _do_crash(self) -> None:
        if not self._running:
            return
        candidates = self._removable()
        if candidates:
            self._system.crash_node(self._rng.choice(candidates))
            self.crashes += 1
        self._schedule(self._spec.crash_period, self._do_crash)
