"""Injects the Section 5.1 workload into a running PubSubSystem.

Subscriptions arrive at a regular period; publications follow a Poisson
process (exponential inter-arrivals); the two streams interleave on the
simulated clock.  Publishers and subscribers are chosen uniformly among
the overlay nodes.  The driver keeps the event generator's view of live
subscriptions in sync (registrations + TTL expirations) so the matching
probability refers to what rendezvous nodes actually store.
"""

from __future__ import annotations

import random

from repro.core.subscriptions import Subscription
from repro.core.system import PubSubSystem
from repro.workload.generator import EventGenerator, SubscriptionGenerator
from repro.workload.spec import WorkloadSpec


class WorkloadDriver:
    """Feeds generated subscriptions and publications to a system.

    Args:
        system: The pub/sub system under test.
        spec: Workload parameters.
        rng: Randomness for arrivals, node choice and content.
        max_subscriptions: Stop injecting subscriptions after this many.
        max_publications: Stop injecting publications after this many.
    """

    def __init__(
        self,
        system: PubSubSystem,
        spec: WorkloadSpec,
        rng: random.Random,
        max_subscriptions: int | None = None,
        max_publications: int | None = None,
    ) -> None:
        self._system = system
        self._spec = spec
        self._rng = rng
        self._max_subscriptions = max_subscriptions
        self._max_publications = max_publications
        self._sub_generator = SubscriptionGenerator(spec, rng)
        self._event_generator = EventGenerator(
            spec, self._sub_generator.space, rng
        )
        self.subscriptions_sent = 0
        self.publications_sent = 0
        self.injected_subscriptions: list[Subscription] = []
        self.injected_events: list = []

    @property
    def space(self):
        """The event space of the generated workload."""
        return self._sub_generator.space

    @property
    def event_generator(self) -> EventGenerator:
        """The publication generator (exposes the live-subscription view)."""
        return self._event_generator

    def start(self) -> None:
        """Schedule the first arrival of each stream."""
        if self._max_subscriptions is None or self._max_subscriptions > 0:
            self._system.sim.schedule(
                self._spec.subscription_period, self._inject_subscription
            )
        if self._max_publications is None or self._max_publications > 0:
            self._system.sim.schedule(
                self._rng.expovariate(1.0 / self._spec.publication_mean_period),
                self._inject_publication,
            )

    def _random_node(self) -> int:
        # Re-sampled from the live membership on every injection so the
        # driver keeps working under churn (removed nodes never publish).
        return self._rng.choice(self._system.overlay.node_ids())

    def _inject_subscription(self) -> None:
        subscription = self._sub_generator.generate()
        ttl = self._spec.subscription_ttl
        now = self._system.now
        self._system.subscribe(self._random_node(), subscription, ttl=ttl)
        expire_at = None if ttl is None else now + ttl
        self._event_generator.register(subscription, expire_at)
        self.injected_subscriptions.append(subscription)
        self.subscriptions_sent += 1
        if (
            self._max_subscriptions is None
            or self.subscriptions_sent < self._max_subscriptions
        ):
            self._system.sim.schedule(
                self._spec.subscription_period, self._inject_subscription
            )

    def _inject_publication(self) -> None:
        event = self._event_generator.generate(self._system.now)
        self._system.publish(self._random_node(), event)
        self.injected_events.append(event)
        self.publications_sent += 1
        if (
            self._max_publications is None
            or self.publications_sent < self._max_publications
        ):
            self._system.sim.schedule(
                self._rng.expovariate(1.0 / self._spec.publication_mean_period),
                self._inject_publication,
            )

    def estimated_duration(self) -> float:
        """A horizon comfortably past the last scheduled arrival.

        Covers both streams plus slack for in-flight routing and a few
        buffer-flush periods.  Requires both stream bounds to be set.
        """
        if self._max_subscriptions is None or self._max_publications is None:
            raise ValueError("estimated_duration needs bounded streams")
        sub_end = (self._max_subscriptions + 1) * self._spec.subscription_period
        pub_end = (self._max_publications + 1) * self._spec.publication_mean_period
        slack = 10.0 * max(
            self._system.config.buffer_period, self._spec.publication_mean_period
        )
        return 1.2 * max(sub_end, pub_end) + slack

    def run_to_completion(self, horizon: float | None = None) -> float:
        """Start (if needed) and run until ``horizon``.

        Periodic timers (buffer flushes) keep the event queue non-empty
        forever, so the run is horizon-bounded rather than drain-based.
        Returns the horizon used.
        """
        if self.subscriptions_sent == 0 and self.publications_sent == 0:
            self.start()
        if horizon is None:
            horizon = self._system.now + self.estimated_duration()
        self._system.sim.run_until(horizon)
        return horizon
