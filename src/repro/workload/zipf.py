"""Finite-domain Zipf sampling.

Selective subscription ranges center on Zipf-distributed values
(Section 5.1): a few hot values attract most subscriptions, modelling
skewed popularity (stock tickers, event types).  The sampler draws rank
``k`` from ``P(k) ∝ 1/k^s`` over ``k = 1..N`` by inverse-CDF on a
precomputed cumulative table; tables are cached per ``(N, s)`` since the
harness builds many generators with the paper's fixed parameters.
"""

from __future__ import annotations

import bisect
import itertools
import random

from repro.errors import ConfigurationError

_CDF_CACHE: dict[tuple[int, float], list[float]] = {}


def _cdf(size: int, exponent: float) -> list[float]:
    key = (size, exponent)
    cached = _CDF_CACHE.get(key)
    if cached is not None:
        return cached
    weights = [1.0 / (k**exponent) for k in range(1, size + 1)]
    cumulative = list(itertools.accumulate(weights))
    total = cumulative[-1]
    cdf = [c / total for c in cumulative]
    _CDF_CACHE[key] = cdf
    return cdf


class ZipfSampler:
    """Draws values in ``[0, size)`` with Zipf-distributed popularity.

    Rank 1 (the hottest) maps to a position chosen by ``shuffle_seed``
    scattering: ranks are mapped to domain values via a deterministic
    affine permutation, so the hot spot is not always value 0 (which
    would pin every hot range against the domain edge).

    Args:
        size: Domain size N.
        exponent: Skew s > 0 (s -> 0 approaches uniform).
        rng: Source of randomness for draws.
        spread: If True (default), apply the affine rank-to-value
            permutation; if False, rank k maps to value k-1 directly.
    """

    def __init__(
        self,
        size: int,
        exponent: float,
        rng: random.Random,
        spread: bool = True,
    ) -> None:
        if size < 1:
            raise ConfigurationError("Zipf domain must be non-empty")
        if exponent <= 0:
            raise ConfigurationError("Zipf exponent must be positive")
        self._size = size
        self._rng = rng
        self._cdf = _cdf(size, exponent)
        if spread:
            # Affine permutation k -> (a*k + b) mod N with gcd(a, N) = 1.
            self._stride = self._coprime_stride(size)
            self._offset = rng.randrange(size)
        else:
            self._stride = 1
            self._offset = 0

    @staticmethod
    def _coprime_stride(size: int) -> int:
        from math import gcd

        candidate = max(1, int(size * 0.6180339887))  # golden-ratio stride
        while gcd(candidate, size) != 1:
            candidate += 1
        return candidate

    def sample_rank(self) -> int:
        """Draw a 1-based Zipf rank."""
        u = self._rng.random()
        return bisect.bisect_left(self._cdf, u) + 1

    def sample(self) -> int:
        """Draw a domain value in ``[0, size)``."""
        rank = self.sample_rank()
        return ((rank - 1) * self._stride + self._offset) % self._size
