"""Replayable workload traces.

A :class:`Trace` is a timestamped sequence of subscribe/publish
operations.  Traces decouple workload generation from execution: the
same trace can be replayed against different mappings, routing modes or
ring sizes for paired comparisons, and persisted to JSON for
regression baselines.
"""

from __future__ import annotations

import dataclasses
import json
import random
from pathlib import Path
from typing import Iterable

from repro.core.events import Attribute, Event, EventSpace
from repro.core.subscriptions import Constraint, Subscription
from repro.core.system import PubSubSystem
from repro.workload.generator import EventGenerator, SubscriptionGenerator
from repro.workload.spec import WorkloadSpec


@dataclasses.dataclass(frozen=True)
class TraceOp:
    """One timed workload operation.

    Attributes:
        time: Simulated injection time.
        kind: ``"sub"`` or ``"pub"``.
        node: Injecting overlay node id.
        subscription: Present for ``"sub"`` operations.
        event: Present for ``"pub"`` operations.
        ttl: Subscription expiration, for ``"sub"`` operations.
    """

    time: float
    kind: str
    node: int
    subscription: Subscription | None = None
    event: Event | None = None
    ttl: float | None = None


class Trace:
    """An ordered, replayable sequence of workload operations."""

    def __init__(self, space: EventSpace, ops: Iterable[TraceOp] = ()) -> None:
        self._space = space
        self._ops: list[TraceOp] = sorted(ops, key=lambda op: op.time)

    @property
    def space(self) -> EventSpace:
        """Event space of the traced workload."""
        return self._space

    @property
    def ops(self) -> list[TraceOp]:
        """The operations, in time order."""
        return list(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    @classmethod
    def generate(
        cls,
        spec: WorkloadSpec,
        rng: random.Random,
        node_ids: list[int],
        subscriptions: int,
        publications: int,
    ) -> "Trace":
        """Pre-generate a full trace per the Section 5.1 arrival model."""
        sub_generator = SubscriptionGenerator(spec, rng)
        sub_ops: list[TraceOp] = []
        time = 0.0
        for _ in range(subscriptions):
            time += spec.subscription_period
            sub_ops.append(
                TraceOp(
                    time=time,
                    kind="sub",
                    node=rng.choice(node_ids),
                    subscription=sub_generator.generate(),
                    ttl=spec.subscription_ttl,
                )
            )
        pub_times = []
        time = 0.0
        for _ in range(publications):
            time += rng.expovariate(1.0 / spec.publication_mean_period)
            pub_times.append(time)
        # Generate publications chronologically so the matching
        # probability refers to the subscriptions live at each instant.
        event_generator = EventGenerator(spec, sub_generator.space, rng)
        sub_index = 0
        pub_ops = []
        for pub_time in pub_times:
            while sub_index < len(sub_ops) and sub_ops[sub_index].time <= pub_time:
                op = sub_ops[sub_index]
                assert op.subscription is not None
                expire_at = None if op.ttl is None else op.time + op.ttl
                event_generator.register(op.subscription, expire_at)
                sub_index += 1
            pub_ops.append(
                TraceOp(
                    time=pub_time,
                    kind="pub",
                    node=rng.choice(node_ids),
                    event=event_generator.generate(pub_time),
                )
            )
        return cls(sub_generator.space, sub_ops + pub_ops)

    def replay(self, system: PubSubSystem, horizon_slack: float = 60.0) -> None:
        """Schedule every operation on the system's simulator and run.

        Args:
            system: Target system (must share the trace's event space).
            horizon_slack: Extra simulated seconds past the last
                operation to let in-flight traffic and flushes settle.
        """
        for op in self._ops:
            if op.kind == "sub":
                assert op.subscription is not None
                system.sim.schedule_at(
                    op.time, system.subscribe, op.node, op.subscription, op.ttl
                )
            else:
                assert op.event is not None
                system.sim.schedule_at(op.time, system.publish, op.node, op.event)
        last = self._ops[-1].time if self._ops else 0.0
        system.sim.run_until(last + horizon_slack)

    # -- persistence -------------------------------------------------------

    def to_json(self) -> str:
        """Serialize the trace (including the event space) to JSON."""
        payload = {
            "version": 1,
            "space": [
                {"name": a.name, "size": a.size, "kind": a.kind}
                for a in self._space.attributes
            ],
            "ops": [self._op_to_dict(op) for op in self._ops],
        }
        return json.dumps(payload)

    @staticmethod
    def _op_to_dict(op: TraceOp) -> dict:
        record: dict = {"time": op.time, "kind": op.kind, "node": op.node}
        if op.subscription is not None:
            record["sid"] = op.subscription.subscription_id
            record["constraints"] = [
                [c.attribute, c.low, c.high] for c in op.subscription.constraints
            ]
            record["ttl"] = op.ttl
        if op.event is not None:
            record["values"] = list(op.event.values)
            record["eid"] = op.event.event_id
        return record

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        """Deserialize a trace produced by :meth:`to_json`."""
        payload = json.loads(text)
        space = EventSpace(
            tuple(
                Attribute(a["name"], a["size"], kind=a.get("kind", "int"))
                for a in payload["space"]
            )
        )
        ops = []
        for record in payload["ops"]:
            subscription = None
            event = None
            if "constraints" in record:
                subscription = Subscription(
                    space=space,
                    constraints=tuple(
                        Constraint(attribute=a, low=lo, high=hi)
                        for a, lo, hi in record["constraints"]
                    ),
                    subscription_id=record["sid"],
                )
            if "values" in record:
                event = Event(
                    space=space,
                    values=tuple(record["values"]),
                    event_id=record["eid"],
                )
            ops.append(
                TraceOp(
                    time=record["time"],
                    kind=record["kind"],
                    node=record["node"],
                    subscription=subscription,
                    event=event,
                    ttl=record.get("ttl"),
                )
            )
        return cls(space, ops)

    def save(self, path: str | Path) -> None:
        """Write the trace to a JSON file."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Read a trace from a JSON file."""
        return cls.from_json(Path(path).read_text())
