"""Workload parameters (the knobs of Section 5.1)."""

from __future__ import annotations

import dataclasses

from repro.core.events import EventSpace
from repro.errors import ConfigurationError

#: The paper's maximum attribute value (values span [0, ATTR_MAX]).
DEFAULT_ATTR_MAX = 1_000_000


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of the synthetic workload.

    Attributes:
        dimensions: Number of event-space attributes (paper: 4).
        attr_max: Maximum attribute value ATTR_MAX (paper: 1,000,000).
        selective_attributes: Indices of the attributes categorized as
            selective for this experiment (paper sweeps 0 or 1).
        nonselective_range_fraction: X/ATTR_MAX for non-selective
            attributes; each constraint spans uniform [1, X] (paper: 3%).
        selective_range_fraction: Same for selective attributes
            (paper: 0.1%).
        zipf_exponent: Skew of the Zipf distribution of selective range
            centers.  The paper does not state its value; 0.8 is chosen
            so that the skew is material (hot values exist) without a
            single value dominating — consistent with the paper's
            observation that one selective attribute *reduces* Mapping
            3's per-node storage (Figs. 6, 8).
        subscription_period: Seconds between subscription injections
            (regular rate, paper: 5 s).
        publication_mean_period: Mean of the exponential inter-arrival
            of publications (Poisson process, paper: 5 s).
        matching_probability: Probability that a generated publication
            matches at least one live subscription (paper: 0.5).
        subscription_ttl: Expiration of stored subscriptions in seconds,
            or None for never (simulates unsubscriptions, Fig. 6).
        constraint_probability: Probability that a *non-selective*
            attribute is constrained at all; below 1 the generator
            emits the paper's partially defined subscriptions
            (Section 4.2) — a subscriber states its interest on the
            attributes it cares about and leaves the rest open, the
            flash-crowd "watch the ticker" shape.  Selective
            attributes are always constrained (they key the AK
            mapping).  1.0 (the default, every attribute constrained)
            draws the exact same random stream as before the knob
            existed.
        temporal_locality: Probability that a publication is a small
            perturbation of the previous one rather than a fresh draw.
            Section 4.3.2 motivates notification buffering with event
            streams whose "consecutive events exhibit temporal locality,
            i.e., have close attribute values" (stock tickers, sensors);
            the Fig. 9(a) harness turns this on.  0 disables it.
        locality_jitter_fraction: Half-width of the perturbation as a
            fraction of ATTR_MAX when a local event is drawn.
    """

    dimensions: int = 4
    attr_max: int = DEFAULT_ATTR_MAX
    selective_attributes: tuple[int, ...] = ()
    nonselective_range_fraction: float = 0.03
    selective_range_fraction: float = 0.001
    zipf_exponent: float = 0.8
    subscription_period: float = 5.0
    publication_mean_period: float = 5.0
    matching_probability: float = 0.5
    subscription_ttl: float | None = None
    constraint_probability: float = 1.0
    temporal_locality: float = 0.0
    locality_jitter_fraction: float = 0.002

    def __post_init__(self) -> None:
        if self.dimensions < 1:
            raise ConfigurationError("dimensions must be >= 1")
        if self.attr_max < 1:
            raise ConfigurationError("attr_max must be >= 1")
        for index in self.selective_attributes:
            if not 0 <= index < self.dimensions:
                raise ConfigurationError(
                    f"selective attribute {index} outside the "
                    f"{self.dimensions}-dimensional space"
                )
        for fraction in (
            self.nonselective_range_fraction,
            self.selective_range_fraction,
        ):
            if not 0 < fraction <= 1:
                raise ConfigurationError(
                    f"range fraction {fraction} outside (0, 1]"
                )
        if not 0 <= self.matching_probability <= 1:
            raise ConfigurationError("matching_probability outside [0, 1]")
        if not 0 <= self.constraint_probability <= 1:
            raise ConfigurationError("constraint_probability outside [0, 1]")
        if self.constraint_probability == 0 and len(
            self.selective_attributes
        ) == 0:
            raise ConfigurationError(
                "constraint_probability 0 with no selective attributes "
                "would generate empty subscriptions"
            )
        if not 0 <= self.temporal_locality <= 1:
            raise ConfigurationError("temporal_locality outside [0, 1]")
        if not 0 < self.locality_jitter_fraction <= 1:
            raise ConfigurationError("locality_jitter_fraction outside (0, 1]")
        if self.subscription_period <= 0 or self.publication_mean_period <= 0:
            raise ConfigurationError("injection periods must be positive")

    @property
    def domain_size(self) -> int:
        """|Ωᵢ| = attr_max + 1 (values are 0..attr_max inclusive)."""
        return self.attr_max + 1

    def make_space(self) -> EventSpace:
        """The event space this workload ranges over."""
        names = tuple(f"a{i + 1}" for i in range(self.dimensions))
        return EventSpace.uniform(names, self.domain_size)

    def is_selective(self, attribute: int) -> bool:
        """True if the attribute is categorized selective."""
        return attribute in self.selective_attributes

    def max_range(self, attribute: int) -> int:
        """X: the largest constraint span for this attribute."""
        fraction = (
            self.selective_range_fraction
            if self.is_selective(attribute)
            else self.nonselective_range_fraction
        )
        return max(1, int(self.attr_max * fraction))

    def average_range(self, attribute: int) -> float:
        """Expected constraint span (ranges are uniform in [1, X])."""
        return (1 + self.max_range(attribute)) / 2
