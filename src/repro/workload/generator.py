"""Subscription and publication generators (Section 5.1).

``SubscriptionGenerator`` draws one range constraint per constrained
attribute: width uniform in ``[1, X]`` (X per the attribute's
selectivity class), centered uniformly (non-selective) or Zipf
(selective), clamped to the domain.  Selective attributes are always
constrained; non-selective ones are each constrained with the spec's
``constraint_probability`` (1.0 = fully defined subscriptions, below 1
the paper's partially defined ones).

``EventGenerator`` honours the *matching probability*: with probability
p the event is synthesized inside a uniformly chosen live subscription;
otherwise a uniform random event is drawn and rejection-tested against
all live subscriptions (via the grid index) until one matches nothing.
The generator tracks subscription expirations so "live" reflects what
rendezvous nodes still store.
"""

from __future__ import annotations

import random
from collections import deque

from repro.core.events import Event, EventSpace
from repro.core.subscriptions import Constraint, Subscription
from repro.matching import GridIndexMatcher
from repro.workload.spec import WorkloadSpec
from repro.workload.zipf import ZipfSampler

#: Attempts to find a non-matching random event before giving up and
#: returning the last draw (the caller's matching probability is then
#: marginally off; with the paper's sparse subscriptions this is never
#: reached in practice).
MAX_REJECTION_ATTEMPTS = 64


class SubscriptionGenerator:
    """Draws subscriptions per the workload spec."""

    def __init__(self, spec: WorkloadSpec, rng: random.Random) -> None:
        self._spec = spec
        self._rng = rng
        self._space = spec.make_space()
        self._zipf: dict[int, ZipfSampler] = {
            attribute: ZipfSampler(spec.domain_size, spec.zipf_exponent, rng)
            for attribute in spec.selective_attributes
        }

    @property
    def space(self) -> EventSpace:
        """The event space subscriptions are drawn over."""
        return self._space

    def _center(self, attribute: int) -> int:
        if attribute in self._zipf:
            return self._zipf[attribute].sample()
        return self._rng.randrange(self._spec.domain_size)

    def generate(self) -> Subscription:
        """One subscription; see ``constraint_probability`` for shape.

        Selective attributes are always constrained; each non-selective
        attribute is constrained with ``spec.constraint_probability``
        (1.0 — the default — constrains everything *and* skips the
        coin flip, so the random stream is identical to the
        pre-partial-subscription generator).
        """
        constraints = []
        spec = self._spec
        probability = spec.constraint_probability
        for attribute in range(self._spec.dimensions):
            if (
                probability < 1.0
                and not spec.is_selective(attribute)
                and self._rng.random() >= probability
            ):
                continue
            span = self._rng.randint(1, self._spec.max_range(attribute))
            center = self._center(attribute)
            low = center - span // 2
            high = low + span - 1
            # Clamp to the domain, preserving the span where possible.
            if low < 0:
                high -= low
                low = 0
            if high > self._spec.attr_max:
                low = max(0, low - (high - self._spec.attr_max))
                high = self._spec.attr_max
            constraints.append(Constraint(attribute=attribute, low=low, high=high))
        return Subscription(space=self._space, constraints=tuple(constraints))


class EventGenerator:
    """Draws publications with a controlled matching probability.

    The generator mirrors the system's view of live subscriptions: the
    driver registers every injected subscription (with its expiry) and
    the generator lazily evicts expired ones.
    """

    def __init__(self, spec: WorkloadSpec, space: EventSpace, rng: random.Random) -> None:
        self._spec = spec
        self._space = space
        self._rng = rng
        self._live = GridIndexMatcher(space)
        self._expiry: deque[tuple[float, int]] = deque()  # (expire_at, sid) in order
        self._subscriptions: dict[int, Subscription] = {}
        self._sid_list: list[int] = []  # sampling pool; compacted lazily
        self._previous: Event | None = None

    @property
    def live_count(self) -> int:
        """Number of currently live registered subscriptions."""
        return len(self._live)

    def register(self, subscription: Subscription, expire_at: float | None) -> None:
        """Track an injected subscription (and when it expires)."""
        self._live.add(subscription)
        self._subscriptions[subscription.subscription_id] = subscription
        self._sid_list.append(subscription.subscription_id)
        if expire_at is not None:
            self._expiry.append((expire_at, subscription.subscription_id))

    def unregister(self, subscription_id: int) -> None:
        """Forget a subscription (explicit unsubscription)."""
        self._live.remove(subscription_id)
        self._subscriptions.pop(subscription_id, None)

    def evict_expired(self, now: float) -> int:
        """Drop subscriptions whose expiry has passed.

        Expirations are registered in injection order; with a constant
        TTL (the paper's setup) the list is sorted, so eviction is a
        prefix scan.
        """
        evicted = 0
        while self._expiry and self._expiry[0][0] <= now:
            _, sid = self._expiry.popleft()
            if sid in self._subscriptions:
                self.unregister(sid)
                evicted += 1
        if len(self._sid_list) > 2 * len(self._subscriptions):
            self._sid_list = [s for s in self._sid_list if s in self._subscriptions]
        return evicted

    def _random_live_subscription(self) -> Subscription | None:
        while self._sid_list:
            sid = self._rng.choice(self._sid_list)
            subscription = self._subscriptions.get(sid)
            if subscription is not None:
                return subscription
            # Stale pool entry: trigger compaction and retry.
            self._sid_list = [s for s in self._sid_list if s in self._subscriptions]
        return None

    def _uniform_event(self) -> Event:
        values = tuple(
            self._rng.randrange(self._spec.domain_size)
            for _ in range(self._spec.dimensions)
        )
        return Event(space=self._space, values=values)

    def _event_inside(self, subscription: Subscription) -> Event:
        values = []
        for attribute in range(self._spec.dimensions):
            constraint = subscription.constraint_on(attribute)
            if constraint is None:
                values.append(self._rng.randrange(self._spec.domain_size))
            else:
                values.append(self._rng.randint(constraint.low, constraint.high))
        return Event(space=self._space, values=tuple(values))

    def _perturbed_event(self, previous: Event) -> Event:
        """A small jitter of the previous event (temporal locality)."""
        jitter = max(1, int(self._spec.attr_max * self._spec.locality_jitter_fraction))
        values = []
        for attribute, value in enumerate(previous.values):
            delta = self._rng.randint(-jitter, jitter)
            values.append(
                min(self._spec.attr_max, max(0, value + delta))
            )
        return Event(space=self._space, values=tuple(values))

    def generate(self, now: float) -> Event:
        """One publication honouring the matching probability at ``now``.

        With ``spec.temporal_locality`` > 0, a publication may instead
        be a small perturbation of the previous one (a data stream, per
        Section 4.3.2); its match status approximately carries over
        because subscription ranges dwarf the jitter.
        """
        self.evict_expired(now)
        if (
            self._previous is not None
            and self._spec.temporal_locality > 0
            and self._rng.random() < self._spec.temporal_locality
        ):
            event = self._perturbed_event(self._previous)
            self._previous = event
            return event
        want_match = (
            self._subscriptions
            and self._rng.random() < self._spec.matching_probability
        )
        if want_match:
            target = self._random_live_subscription()
            if target is not None:
                event = self._event_inside(target)
                self._previous = event
                return event
        event = self._uniform_event()
        for _ in range(MAX_REJECTION_ATTEMPTS):
            if not self._live.matches_any(event):
                break
            event = self._uniform_event()
        self._previous = event
        return event
