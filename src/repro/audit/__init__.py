"""Online invariant auditor & delivery-correctness observatory.

Attach an :class:`Auditor` to a running
:class:`~repro.core.system.PubSubSystem` and it verifies, on the
simulated clock, that the overlay stays structurally sound (Chord
finger consistency, Pastry leaf-set symmetry and prefix-row validity,
CAN zone tessellation) and that every publication reaches exactly the
subscriptions it matches (the paper's §3 mapping-intersection
contract), recording SLO histograms along the way.  Violations and
probe results export through the telemetry JSONL (format version 2)
and render via ``repro audit``.

Disabled runs pay nothing: the system's hook sites guard on a cached
``auditor is None`` check, pinned by the quick-bench fingerprint gate.
"""

from __future__ import annotations

from repro.audit.auditor import AuditConfig, Auditor, AuditReport
from repro.audit.invariants import overlay_kind, probe_structure
from repro.audit.records import VIOLATION_TYPES, ProbeRecord, Violation
from repro.audit.report import (
    render_health_report,
    report_from_auditor,
    report_from_dump,
)

__all__ = [
    "AuditConfig",
    "AuditReport",
    "Auditor",
    "ProbeRecord",
    "VIOLATION_TYPES",
    "Violation",
    "overlay_kind",
    "probe_structure",
    "render_health_report",
    "report_from_auditor",
    "report_from_dump",
]
