"""Structural invariant checks against overlay ground truth.

Each probe compares the *materialized* routing state of live nodes
against the deterministic ground truth the overlay can recompute from
its membership (``compute_finger_slots`` / ``compute_leaf_set`` +
``compute_routing_table`` / ``compute_cells``).

Routing state in this codebase is lazily version-memoized: a node only
syncs its tables when it next routes a message, so most nodes are
legitimately *stale* (or *cold* — never materialized) at any instant.
A probe therefore verifies only the nodes whose state version matches
the current membership version, reports the rest as staleness
statistics, and never mutates node state (it reads the raw fields via
``audit_state()``, not the syncing accessors).
"""

from __future__ import annotations

from repro.audit.records import (
    CAN_EXPRESS_MISMATCH,
    CAN_TESSELLATION,
    CAN_ZONE_MISMATCH,
    CAN_ZONE_OVERLAP,
    CHORD_FINGER_MISMATCH,
    PASTRY_LEAF_ASYMMETRY,
    PASTRY_LEAF_MISMATCH,
    PASTRY_PREFIX_ROW,
    ProbeRecord,
    Violation,
)
from repro.overlay.can.overlay import CanOverlay
from repro.overlay.chord.overlay import ChordOverlay
from repro.overlay.pastry.overlay import PastryOverlay


def overlay_kind(overlay) -> str:
    """Short overlay family name for labels and probe records."""
    if isinstance(overlay, ChordOverlay):
        return "chord"
    if isinstance(overlay, PastryOverlay):
        return "pastry"
    if isinstance(overlay, CanOverlay):
        return "can"
    return type(overlay).__name__.lower()


def probe_structure(
    overlay, now: float
) -> tuple[ProbeRecord, list[Violation], list[int]]:
    """Run one structural probe.

    Returns the probe record, the violations found, and the per-node
    version lags of the stale (but not cold) nodes, for the staleness
    histogram.
    """
    kind = overlay_kind(overlay)
    if kind == "chord":
        checked, stale, cold, lags, violations = _probe_chord(overlay, now)
    elif kind == "pastry":
        checked, stale, cold, lags, violations = _probe_pastry(overlay, now)
    elif kind == "can":
        checked, stale, cold, lags, violations = _probe_can(overlay, now)
    else:  # unknown overlay family: nothing checkable
        checked = stale = cold = 0
        lags, violations = [], []
    record = ProbeRecord(
        t=now,
        overlay=kind,
        nodes_total=len(overlay),
        nodes_checked=checked,
        nodes_stale=stale,
        nodes_cold=cold,
        max_staleness=max(lags, default=0),
        violations=len(violations),
    )
    return record, violations, lags


def _probe_chord(overlay: ChordOverlay, now: float):
    """Finger slots of every *current* node must equal ground truth.

    Slot ``i`` is the live successor of ``finger_start(id, i+1)`` —
    slot 0 doubles as the successor pointer, so this check covers both
    the successor and finger consistency of Section 3.1.1.
    """
    checked = stale = cold = 0
    lags: list[int] = []
    violations: list[Violation] = []
    version_now = overlay.ring_version
    for node_id in overlay.node_ids():
        version, slots = overlay.node(node_id).audit_state()
        if version < 0:
            cold += 1
            continue
        if version != version_now:
            stale += 1
            lags.append(version_now - version)
            continue
        checked += 1
        truth = overlay.compute_finger_slots(node_id)
        if slots != truth:
            bad = [
                index
                for index, (have, want) in enumerate(zip(slots, truth))
                if have != want
            ]
            if len(slots) != len(truth):
                bad.append(min(len(slots), len(truth)))
            violations.append(
                Violation(
                    CHORD_FINGER_MISMATCH,
                    now,
                    node=node_id,
                    detail=(
                        f"slots {bad[:4]} diverge from live membership "
                        f"(have {[slots[i] for i in bad[:4] if i < len(slots)]}, "
                        f"want {[truth[i] for i in bad[:4] if i < len(truth)]})"
                    ),
                )
            )
    return checked, stale, cold, lags, violations


def _probe_pastry(overlay: PastryOverlay, now: float):
    """Leaf-set symmetry + prefix-row validity for current nodes.

    The ground-truth leaf set (up to L/2 ring neighbors per side) is
    symmetric by construction, so any current pair where B lists A but
    A does not list B is a corruption.  A routing-table row must hold
    the first live node of its flipped-bit half-space (the deterministic
    min-id rule both the rebuild and the patch paths maintain).
    """
    checked = stale = cold = 0
    lags: list[int] = []
    violations: list[Violation] = []
    version_now = overlay.ring_version
    current_leaves: dict[int, list[int]] = {}
    for node_id in overlay.node_ids():
        version, leaves, table = overlay.node(node_id).audit_state()
        if version < 0:
            cold += 1
            continue
        if version != version_now:
            stale += 1
            lags.append(version_now - version)
            continue
        checked += 1
        current_leaves[node_id] = leaves
        truth_leaves = overlay.compute_leaf_set(node_id)
        if leaves != truth_leaves:
            violations.append(
                Violation(
                    PASTRY_LEAF_MISMATCH,
                    now,
                    node=node_id,
                    detail=f"leaf set {leaves} != ring arc {truth_leaves}",
                )
            )
        truth_table = overlay.compute_routing_table(node_id)
        for row, want in enumerate(truth_table):
            have = table[row] if row < len(table) else None
            if have != want:
                violations.append(
                    Violation(
                        PASTRY_PREFIX_ROW,
                        now,
                        node=node_id,
                        detail=f"row {row}: have {have}, want {want}",
                    )
                )
    for node_id, leaves in current_leaves.items():
        for leaf in leaves:
            peer = current_leaves.get(leaf)
            if peer is not None and node_id not in peer:
                violations.append(
                    Violation(
                        PASTRY_LEAF_ASYMMETRY,
                        now,
                        node=leaf,
                        detail=(
                            f"{node_id} lists {leaf} as a leaf but "
                            f"{leaf} does not list {node_id}"
                        ),
                    )
                )
    return checked, stale, cold, lags, violations


def _probe_can(overlay: CanOverlay, now: float):
    """Zone tessellation: cells match zones, no overlap, full cover.

    The zone table itself (``zone_table``) must tile the key space —
    strictly sorted unique starts, live owners, each covering its own
    id.  On top of that, every current node's materialized Morton cells
    must equal the decomposition of its ground-truth zone, and no two
    current nodes' cells may intersect.
    """
    checked = stale = cold = 0
    lags: list[int] = []
    violations: list[Violation] = []
    version_now = overlay.zone_version
    table = overlay.zone_table()
    starts = [start for start, _ in table]
    if sorted(set(starts)) != starts:
        violations.append(
            Violation(
                CAN_TESSELLATION,
                now,
                detail=f"zone starts not strictly increasing: {starts}",
            )
        )
    for start, owner in table:
        if not overlay.is_alive(owner):
            violations.append(
                Violation(
                    CAN_TESSELLATION,
                    now,
                    node=owner,
                    detail=f"zone at {start} owned by dead node {owner}",
                )
            )
        elif overlay.owner_of(owner) != owner:
            violations.append(
                Violation(
                    CAN_TESSELLATION,
                    now,
                    node=owner,
                    detail=f"node {owner} does not cover its own id",
                )
            )
    intervals: list[tuple[int, int, int]] = []
    express_on = overlay.express_links
    for node_id in overlay.node_ids():
        node = overlay.node(node_id)
        if express_on:
            # Express state is memoized on its own version; verify it
            # whenever it is current, independent of the cells below.
            express_version, links = node.audit_express_state()
            if express_version == version_now:
                truth_links = overlay.compute_express_links(node_id)
                if links != truth_links:
                    violations.append(
                        Violation(
                            CAN_EXPRESS_MISMATCH,
                            now,
                            node=node_id,
                            detail=(
                                f"express links {links} != "
                                f"recomputed {truth_links}"
                            ),
                        )
                    )
        version, cells = node.audit_state()
        if version < 0:
            cold += 1
            continue
        if version != version_now:
            stale += 1
            lags.append(version_now - version)
            continue
        checked += 1
        truth = overlay.compute_cells(node_id)
        if cells != truth:
            violations.append(
                Violation(
                    CAN_ZONE_MISMATCH,
                    now,
                    node=node_id,
                    detail=f"cells {cells} != zone decomposition {truth}",
                )
            )
        intervals.extend(
            (start, start + size, node_id) for start, size in cells
        )
    intervals.sort()
    for (s1, e1, n1), (s2, e2, n2) in zip(intervals, intervals[1:]):
        if s2 < e1:
            violations.append(
                Violation(
                    CAN_ZONE_OVERLAP,
                    now,
                    node=n2,
                    detail=(
                        f"cells of nodes {n1} and {n2} overlap: "
                        f"[{s1},{e1}) ∩ [{s2},{e2})"
                    ),
                )
            )
    return checked, stale, cold, lags, violations
