"""Audit record types: violations and structural probe results.

These are the payloads the auditor feeds into the telemetry JSONL
export (``type: "violation"`` / ``type: "probe"`` records, format
version 2).  They live in their own module with no telemetry imports so
:mod:`repro.telemetry.export` can deserialize them without an import
cycle.
"""

from __future__ import annotations

import dataclasses

# -- violation taxonomy -------------------------------------------------------
#
# One distinct type per checkable invariant, so a health report (and the
# fault-injection tests) can tell *which* contract broke:
#
# structural (probe-time):
CHORD_FINGER_MISMATCH = "chord-finger-mismatch"
PASTRY_LEAF_MISMATCH = "pastry-leaf-set-mismatch"
PASTRY_LEAF_ASYMMETRY = "pastry-leaf-asymmetry"
PASTRY_PREFIX_ROW = "pastry-prefix-row"
CAN_ZONE_MISMATCH = "can-zone-mismatch"
CAN_ZONE_OVERLAP = "can-zone-overlap"
CAN_TESSELLATION = "can-tessellation"
CAN_EXPRESS_MISMATCH = "can-express-mismatch"
# delivery-correctness (publication-deadline / notification-time):
NOTIFICATION_MISSED = "notification-missed"
NOTIFICATION_FALSE_POSITIVE = "notification-false-positive"
NOTIFICATION_UNKNOWN = "notification-unknown-subscription"
NOTIFICATION_MISROUTED = "notification-misrouted"
MAPPING_INTERSECTION = "mapping-intersection"

#: Every violation type the auditor can emit (render order).
VIOLATION_TYPES = (
    CHORD_FINGER_MISMATCH,
    PASTRY_LEAF_MISMATCH,
    PASTRY_LEAF_ASYMMETRY,
    PASTRY_PREFIX_ROW,
    CAN_ZONE_MISMATCH,
    CAN_ZONE_OVERLAP,
    CAN_TESSELLATION,
    CAN_EXPRESS_MISMATCH,
    NOTIFICATION_MISSED,
    NOTIFICATION_FALSE_POSITIVE,
    NOTIFICATION_UNKNOWN,
    NOTIFICATION_MISROUTED,
    MAPPING_INTERSECTION,
)


@dataclasses.dataclass(frozen=True)
class Violation:
    """One detected invariant breach.

    Attributes:
        vtype: One of the ``VIOLATION_TYPES`` constants.
        t: Simulated time the breach was detected.
        node: The overlay node the breach is anchored at (-1 = n/a).
        mapping: Active ak-mapping name ("" for structural checks,
            which are mapping-independent).
        detail: Human-readable specifics (ids, expected vs actual).
    """

    vtype: str
    t: float
    node: int = -1
    mapping: str = ""
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "type": "violation",
            "vtype": self.vtype,
            "t": self.t,
            "node": self.node,
            "mapping": self.mapping,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Violation":
        return cls(
            vtype=record["vtype"],
            t=record["t"],
            node=record.get("node", -1),
            mapping=record.get("mapping", ""),
            detail=record.get("detail", ""),
        )


@dataclasses.dataclass(frozen=True)
class ProbeRecord:
    """One periodic structural-invariant probe over the overlay.

    Routing state is *lazily* version-memoized (nodes sync on use), so
    a probe only verifies the nodes whose table version matches the
    current membership version — the rest are merely stale, which is
    expected, and reported as staleness statistics instead of
    violations.

    Attributes:
        t: Simulated probe time.
        overlay: Overlay kind ("chord" / "pastry" / "can").
        nodes_total: Live nodes at probe time.
        nodes_checked: Nodes whose routing state was current and
            therefore structurally verified.
        nodes_stale: Nodes behind the membership version (expected
            under lazy maintenance; not violations).
        nodes_cold: Nodes that never materialized routing state.
        max_staleness: Largest version lag among stale nodes.
        violations: Structural violations found by this probe.
    """

    t: float
    overlay: str
    nodes_total: int
    nodes_checked: int
    nodes_stale: int
    nodes_cold: int
    max_staleness: int
    violations: int

    def as_dict(self) -> dict:
        return {
            "type": "probe",
            "t": self.t,
            "overlay": self.overlay,
            "nodes_total": self.nodes_total,
            "nodes_checked": self.nodes_checked,
            "nodes_stale": self.nodes_stale,
            "nodes_cold": self.nodes_cold,
            "max_staleness": self.max_staleness,
            "violations": self.violations,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "ProbeRecord":
        return cls(
            t=record["t"],
            overlay=record["overlay"],
            nodes_total=record["nodes_total"],
            nodes_checked=record["nodes_checked"],
            nodes_stale=record["nodes_stale"],
            nodes_cold=record["nodes_cold"],
            max_staleness=record["max_staleness"],
            violations=record["violations"],
        )
