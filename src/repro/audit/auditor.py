"""The online auditor: shadow ledger, delivery oracle, probe scheduling.

The :class:`Auditor` attaches to a :class:`~repro.core.system.PubSubSystem`
and observes (never steers) the run:

- **Structural probes** fire on the simulated clock and verify the
  overlay's routing state against ground truth
  (:func:`repro.audit.invariants.probe_structure`).
- **Delivery correctness** replays every publication against the
  brute-force matching oracle (``Subscription.matches``) over a shadow
  ledger of every subscribe/unsubscribe the application issued, then —
  one delivery deadline later — flags expected-but-missing
  notifications (the paper's mapping-intersection-rule contract,
  §3) and classifies every arriving notification as true/false
  positive.
- **SLO histograms** record notification latency, hop dilation versus
  the overlay's ideal route length, and duplicate m-cast deliveries
  per publication.

Race tolerance: the simulated system is asynchronous, so the oracle is
deliberately lenient at the edges — a subscription installed, expiring
or removed within ``grace`` seconds of a publication is *indeterminate*
(the subscribe/unsubscribe may still be in flight past the rendezvous)
and never produces a violation.  A clean run must report zero
violations; the fault-injection suite pins that each corruption class
still does.
"""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING

from repro.audit.invariants import overlay_kind, probe_structure
from repro.audit.records import (
    MAPPING_INTERSECTION,
    NOTIFICATION_FALSE_POSITIVE,
    NOTIFICATION_MISROUTED,
    NOTIFICATION_MISSED,
    NOTIFICATION_UNKNOWN,
    ProbeRecord,
    Violation,
)

if TYPE_CHECKING:
    from repro.core.events import Event
    from repro.core.payloads import Notification
    from repro.core.subscriptions import Subscription


@dataclasses.dataclass(frozen=True)
class AuditConfig:
    """Knobs of the online auditor.

    Attributes:
        probe_period: Seconds between structural probes (None lets the
            caller derive one from the run horizon).
        delivery_deadline: Seconds after a publication by which every
            expected notification must have arrived.  None auto-sizes
            from the system config: routing plus a buffering allowance
            (buffered notifications wait up to several flush periods).
        grace: Edge tolerance in seconds — subscriptions installed,
            expiring or removed within ``grace`` of a publication are
            excluded from the oracle's expectations.
    """

    probe_period: float | None = None
    delivery_deadline: float | None = None
    grace: float = 2.0


class _LedgerEntry:
    """Shadow record of one subscription's application-level lifetime."""

    __slots__ = (
        "subscription", "subscriber", "t_subscribed", "expire_at",
        "t_unsubscribed",
    )

    def __init__(
        self,
        subscription: "Subscription",
        subscriber: int,
        t_subscribed: float,
        expire_at: float | None,
    ) -> None:
        self.subscription = subscription
        self.subscriber = subscriber
        self.t_subscribed = t_subscribed
        self.expire_at = expire_at
        self.t_unsubscribed: float | None = None


class _PendingPublication:
    """One publication awaiting its delivery-deadline evaluation."""

    __slots__ = ("event", "t", "request_id", "n_nodes", "expected", "arrivals")

    def __init__(
        self,
        event: "Event",
        t: float,
        request_id: int,
        n_nodes: int,
        expected: dict[int, _LedgerEntry],
    ) -> None:
        self.event = event
        self.t = t
        self.request_id = request_id
        self.n_nodes = n_nodes
        self.expected = expected
        self.arrivals: dict[int, int] = {}


@dataclasses.dataclass
class AuditReport:
    """Aggregated outcome of one audited run."""

    violations: list[Violation]
    probes: list[ProbeRecord]
    publications_audited: int
    publications_indeterminate: int
    deliveries_true: int
    deliveries_false: int
    deliveries_duplicate: int

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts_by_type(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.vtype] = counts.get(violation.vtype, 0) + 1
        return counts


class Auditor:
    """Observes one system: shadow ledger + probes + SLO histograms.

    Constructing an auditor wires it into the system (the system's
    guarded hooks start firing) and registers it on the system's
    telemetry (if enabled) so :func:`repro.telemetry.export.write_jsonl`
    emits its violations and probe records.
    """

    def __init__(self, system, config: AuditConfig | None = None) -> None:
        self._system = system
        self._sim = system.sim
        self._config = config or AuditConfig()
        self._mapping = system.mapping
        self._mapping_name = system.mapping.name
        if self._config.delivery_deadline is not None:
            self._deadline = self._config.delivery_deadline
        else:
            sys_config = system.config
            self._deadline = 10.0 + (
                6.0 * sys_config.buffer_period if sys_config.buffering else 0.0
            )
        kind = overlay_kind(system.overlay)
        self._overlay_kind = kind
        self.violations: list[Violation] = []
        self.probes: list[ProbeRecord] = []
        self._ledger: dict[int, _LedgerEntry] = {}
        self._pending: dict[int, _PendingPublication] = {}
        self._evaluated: set[int] = set()
        registry = system.telemetry.registry
        self._registry = registry
        self._latency_hist = registry.histogram("audit.notification_latency")
        self._dilation_hist = registry.histogram("audit.hop_dilation")
        self._duplicates_hist = registry.histogram("audit.duplicate_deliveries")
        self._staleness_hist = registry.histogram(
            "audit.table_staleness", overlay=kind
        )
        name = self._mapping_name
        self._true_counter = registry.counter(
            "audit.deliveries_true", mapping=name
        )
        self._false_counter = registry.counter(
            "audit.deliveries_false", mapping=name
        )
        self._dup_counter = registry.counter(
            "audit.deliveries_duplicate", mapping=name
        )
        self._late_counter = registry.counter(
            "audit.deliveries_late", mapping=name
        )
        self._pubs_counter = registry.counter(
            "audit.publications_audited", mapping=name
        )
        self._indeterminate_counter = registry.counter(
            "audit.publications_indeterminate", mapping=name
        )
        self._probes_counter = registry.counter("audit.probes", overlay=kind)
        system.attach_auditor(self)
        telemetry = system.telemetry
        if telemetry.enabled:
            telemetry.audit = self

    # -- structural probes ---------------------------------------------------

    def run_probe(self) -> ProbeRecord:
        """Snapshot the overlay and verify its structural invariants."""
        record, violations, lags = probe_structure(
            self._system.overlay, self._sim.now
        )
        self.probes.append(record)
        self._probes_counter.inc()
        for lag in lags:
            self._staleness_hist.observe(float(lag))
        for violation in violations:
            self._record(violation)
        return record

    def schedule_probes(self, period: float, horizon: float | None = None) -> None:
        """Fire :meth:`run_probe` every ``period`` sim-seconds.

        ``horizon`` bounds the rescheduling (see
        :meth:`~repro.sim.kernel.Simulator.call_every`); without it the
        probe chain would keep the event queue non-empty forever.
        """
        self._sim.call_every(period, self.run_probe, horizon=horizon)

    # -- system hooks (guarded by ``system._auditor is not None``) -----------

    def on_subscribe(
        self,
        subscription: "Subscription",
        subscriber: int,
        ttl: float | None,
        now: float,
    ) -> None:
        self._ledger[subscription.subscription_id] = _LedgerEntry(
            subscription,
            subscriber,
            now,
            None if ttl is None else now + ttl,
        )

    def on_unsubscribe(self, subscription_id: int, now: float) -> None:
        entry = self._ledger.get(subscription_id)
        if entry is not None and entry.t_unsubscribed is None:
            entry.t_unsubscribed = now

    def on_publish(
        self,
        event: "Event",
        publisher: int,
        keys: frozenset[int],
        request_id: int,
        now: float,
    ) -> None:
        if event.event_id in self._pending or event.event_id in self._evaluated:
            # Same event object published twice: arrivals would be
            # ambiguous, so only the first publication is audited.
            self._indeterminate_counter.inc()
            return
        grace = self._config.grace
        expected: dict[int, _LedgerEntry] = {}
        for sid, entry in self._ledger.items():
            if entry.t_subscribed + grace > now:
                continue  # install may still be in flight
            if entry.t_unsubscribed is not None:
                continue  # already removed (or removal in flight)
            if entry.expire_at is not None and entry.expire_at <= now + grace:
                continue  # TTL edge: may expire at the rendezvous first
            if not entry.subscription.matches(event):
                continue
            # The paper's §3 contract: e ∈ σ must imply EK(e) ∩ SK(σ) ≠ ∅.
            # An empty intersection means no rendezvous node can produce
            # the notification — flag the root cause instead of the
            # (certain) downstream miss.
            if not (keys & self._mapping.subscription_keys(entry.subscription)):
                self._record(
                    Violation(
                        MAPPING_INTERSECTION,
                        now,
                        node=entry.subscriber,
                        mapping=self._mapping_name,
                        detail=(
                            f"event {event.event_id} matches subscription "
                            f"{sid} but EK(e) ∩ SK(σ) = ∅"
                        ),
                    )
                )
                continue
            expected[sid] = entry
        self._pending[event.event_id] = _PendingPublication(
            event, now, request_id, len(self._system.overlay), expected
        )
        self._pubs_counter.inc()
        self._sim.call_at(now + self._deadline, self._evaluate, event.event_id)

    def on_notifications(
        self, node_id: int, notifications: tuple["Notification", ...], now: float
    ) -> None:
        """Classify one delivered batch (pre-deduplication)."""
        for notification in notifications:
            self._latency_hist.observe(now - notification.published_at)
            sid = notification.subscription_id
            entry = self._ledger.get(sid)
            if entry is None:
                self._false_counter.inc()
                self._record(
                    Violation(
                        NOTIFICATION_UNKNOWN,
                        now,
                        node=node_id,
                        mapping=self._mapping_name,
                        detail=f"notification for unknown subscription {sid}",
                    )
                )
                continue
            if not entry.subscription.matches(notification.event):
                self._false_counter.inc()
                self._record(
                    Violation(
                        NOTIFICATION_FALSE_POSITIVE,
                        now,
                        node=node_id,
                        mapping=self._mapping_name,
                        detail=(
                            f"event {notification.event.event_id} does not "
                            f"match subscription {sid}"
                        ),
                    )
                )
                continue
            self._true_counter.inc()
            if node_id != entry.subscriber:
                self._record(
                    Violation(
                        NOTIFICATION_MISROUTED,
                        now,
                        node=node_id,
                        mapping=self._mapping_name,
                        detail=(
                            f"subscription {sid} delivered at {node_id}, "
                            f"subscriber is {entry.subscriber}"
                        ),
                    )
                )
            event_id = notification.event.event_id
            pending = self._pending.get(event_id)
            if pending is not None:
                pending.arrivals[sid] = pending.arrivals.get(sid, 0) + 1
            elif event_id in self._evaluated:
                self._late_counter.inc()

    # -- deadline evaluation -------------------------------------------------

    def _evaluate(self, event_id: int) -> None:
        pending = self._pending.pop(event_id, None)
        if pending is None:
            return
        self._evaluated.add(event_id)
        now = self._sim.now
        grace = self._config.grace
        overlay = self._system.overlay
        duplicates = 0
        for sid, count in pending.arrivals.items():
            if count > 1:
                duplicates += count - 1
        for sid, entry in pending.expected.items():
            if pending.arrivals.get(sid, 0) > 0:
                continue
            if (
                entry.t_unsubscribed is not None
                and entry.t_unsubscribed <= pending.t + grace
            ):
                continue  # unsubscribe raced the publication
            if not overlay.is_alive(entry.subscriber):
                continue  # subscriber gone: nothing left to deliver to
            self._record(
                Violation(
                    NOTIFICATION_MISSED,
                    now,
                    node=entry.subscriber,
                    mapping=self._mapping_name,
                    detail=(
                        f"event {pending.event.event_id} matches "
                        f"subscription {sid} but no notification arrived "
                        f"within {self._deadline}s"
                    ),
                )
            )
        self._duplicates_hist.observe(float(duplicates))
        if duplicates:
            self._dup_counter.inc(duplicates)
        trace = self._system.recorder.messages.traces.get(pending.request_id)
        if trace is not None and trace.max_path_hops > 0:
            self._dilation_hist.observe(
                trace.max_path_hops / self._ideal_hops(pending.n_nodes)
            )

    def _ideal_hops(self, n_nodes: int) -> float:
        """Ideal route length: log₂(n) for ring overlays, √n for CAN."""
        if n_nodes <= 1:
            return 1.0
        if self._overlay_kind == "can":
            return max(1.0, math.sqrt(n_nodes))
        return max(1.0, math.ceil(math.log2(n_nodes)))

    # -- reporting -----------------------------------------------------------

    def finalize(self) -> AuditReport:
        """Evaluate what is still pending and build the report.

        Publications whose deadline lies beyond the current sim time
        (the run's horizon cut them off) are *indeterminate*: in-flight
        deliveries may have been truncated with the run, so no missed
        violations are derived from them.
        """
        now = self._sim.now
        for event_id in list(self._pending):
            pending = self._pending[event_id]
            if now >= pending.t + self._deadline:
                self._evaluate(event_id)
            else:
                self._pending.pop(event_id)
                self._indeterminate_counter.inc()
        return self.report()

    def report(self) -> AuditReport:
        return AuditReport(
            violations=list(self.violations),
            probes=list(self.probes),
            publications_audited=self._pubs_counter.value,
            publications_indeterminate=self._indeterminate_counter.value,
            deliveries_true=self._true_counter.value,
            deliveries_false=self._false_counter.value,
            deliveries_duplicate=self._dup_counter.value,
        )

    def _record(self, violation: Violation) -> None:
        self.violations.append(violation)
        self._registry.counter("audit.violations", vtype=violation.vtype).inc()
