"""Health-report rendering for ``repro audit`` and ``repro run --audit``.

The renderer works from plain data (violation/probe records plus
``audit.*`` counter and histogram summaries) so the same report comes
out of a live :class:`~repro.audit.auditor.Auditor` and of a telemetry
JSONL export loaded back from disk.
"""

from __future__ import annotations

from repro.audit.records import VIOLATION_TYPES, ProbeRecord, Violation

#: Sample violation details shown per type in the report.
_DETAILS_PER_TYPE = 3

#: SLO histograms rendered with percentiles in the health report.
SLO_HISTOGRAMS = (
    "audit.notification_latency",
    "audit.hop_dilation",
    "audit.duplicate_deliveries",
    "audit.table_staleness",
)


def _label_suffix(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{{{inner}}}"


def render_health_report(
    violations: list[Violation],
    probes: list[ProbeRecord],
    counters: list[dict],
    histograms: list[dict],
    source: str = "",
) -> str:
    """Render the audit health report as a multi-line string."""
    lines: list[str] = []
    title = "audit health report"
    if source:
        title += f" — {source}"
    lines.append(title)
    lines.append("=" * len(title))
    if violations:
        lines.append(f"VERDICT: UNHEALTHY — {len(violations)} violation(s)")
    else:
        lines.append("VERDICT: healthy — 0 violations")
    lines.append("")

    lines.append("violations by type:")
    counts: dict[str, list[Violation]] = {}
    for violation in violations:
        counts.setdefault(violation.vtype, []).append(violation)
    known = [v for v in VIOLATION_TYPES if v in counts]
    extra = sorted(set(counts) - set(VIOLATION_TYPES))
    for vtype in known + extra:
        group = counts[vtype]
        lines.append(f"  {vtype}: {len(group)}")
        for violation in group[:_DETAILS_PER_TYPE]:
            where = f"node {violation.node}" if violation.node >= 0 else "-"
            mapping = f" [{violation.mapping}]" if violation.mapping else ""
            lines.append(
                f"    t={violation.t:.3f} {where}{mapping}: {violation.detail}"
            )
        if len(group) > _DETAILS_PER_TYPE:
            lines.append(f"    ... and {len(group) - _DETAILS_PER_TYPE} more")
    if not counts:
        lines.append("  (none)")
    lines.append("")

    lines.append("structural probes:")
    if probes:
        checked = sum(p.nodes_checked for p in probes)
        stale = sum(p.nodes_stale for p in probes)
        cold = sum(p.nodes_cold for p in probes)
        worst = max(p.max_staleness for p in probes)
        overlays = sorted({p.overlay for p in probes})
        lines.append(
            f"  {len(probes)} probe(s) over {'/'.join(overlays)}: "
            f"{checked} node-checks current, {stale} stale, {cold} cold "
            f"(max staleness {worst} version(s))"
        )
    else:
        lines.append("  (none recorded)")
    lines.append("")

    lines.append("delivery accounting:")
    audit_counters = [c for c in counters if c["name"].startswith("audit.")]
    if audit_counters:
        for counter in sorted(
            audit_counters,
            key=lambda c: (c["name"], sorted(c.get("labels", {}).items())),
        ):
            label = _label_suffix(counter.get("labels", {}))
            lines.append(f"  {counter['name']}{label}: {counter['value']}")
    else:
        lines.append("  (no audit counters)")
    lines.append("")

    lines.append("SLO histograms (p50/p95/p99):")
    slo = [h for h in histograms if h["name"] in SLO_HISTOGRAMS]
    for histogram in sorted(slo, key=lambda h: h["name"]):
        label = _label_suffix(histogram.get("labels", {}))
        if histogram.get("count", 0):
            lines.append(
                f"  {histogram['name']}{label}: "
                f"{histogram.get('p50', 0.0):.4g}/"
                f"{histogram.get('p95', 0.0):.4g}/"
                f"{histogram.get('p99', 0.0):.4g} "
                f"(n={histogram['count']}, max={histogram.get('max', 0.0):.4g})"
            )
        else:
            lines.append(f"  {histogram['name']}{label}: no observations")
    if not slo:
        lines.append("  (none)")
    return "\n".join(lines) + "\n"


def report_from_auditor(auditor, source: str = "") -> str:
    """Render the health report straight from a live auditor."""
    registry = auditor._registry
    counters = [
        {"name": c.name, "labels": dict(c.labels), "value": c.value}
        for c in registry.counters()
    ]
    histograms = []
    for histogram in registry.histograms():
        summary = histogram.summary()
        histograms.append(
            {
                "name": histogram.name,
                "labels": dict(histogram.labels),
                "count": summary.count,
                "mean": summary.mean,
                "p50": summary.p50,
                "p95": summary.p95,
                "p99": summary.p99,
                "max": summary.maximum,
            }
        )
    return render_health_report(
        auditor.violations, auditor.probes, counters, histograms, source=source
    )


def report_from_dump(dump, source: str = "") -> tuple[str, bool]:
    """Render from a loaded JSONL dump; returns ``(text, has_audit_data)``.

    ``has_audit_data`` is False when the export contains no audit
    records at all (no probes, no violations, no ``audit.*`` counters)
    — the run was not audited, which ``repro audit`` reports as a
    configuration error rather than a clean bill of health.
    """
    has_audit_data = bool(
        dump.violations
        or dump.probes
        or any(c["name"].startswith("audit.") for c in dump.counters)
    )
    text = render_health_report(
        dump.violations, dump.probes, dump.counters, dump.histograms,
        source=source,
    )
    # Coordinator-detected shard load imbalance (format v4+) rides the
    # export as shard-scope overload records; surface it as a warning
    # footer so the audit path sees it instead of a stderr log line.
    # Informational only — the exit code stays violation-driven.
    shard_imbalances = [
        record for record in getattr(dump, "overloads", [])
        if record.get("scope") == "shard"
    ]
    if shard_imbalances:
        worst = max(shard_imbalances, key=lambda r: r.get("ratio", 0.0))
        text += (
            f"\n\nwarning: shard load imbalance {worst['ratio']:.2f}x "
            f"max/median (threshold {worst['threshold']:.1f}x; "
            f"loads {worst['loads']}) — consider the rebalance advisor's "
            "cut points (repro report --mode shard)"
        )
    return text, has_audit_data
