"""The discrete-event simulator core.

A :class:`Simulator` owns a virtual clock and a priority queue of
:class:`~repro.sim.events.ScheduledEvent` records.  Components schedule
callbacks at relative delays; the kernel fires them in timestamp order,
advancing the clock discontinuously.  Equal timestamps fire in the order
they were scheduled, which — together with seeded random streams — makes
every simulation run bit-for-bit reproducible.

Hot-path notes: the heap holds plain ``(time, seq, event)`` tuples so
ordering is resolved by C tuple comparison (``seq`` is unique, so the
event object itself is never compared), cancellation is lazy with a
live counter (``pending`` is O(1)), and the drain loops bind the heap
and ``heappop`` locally instead of re-resolving attributes per event.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable

from repro.sim.events import ScheduledEvent


class SimulationError(RuntimeError):
    """Raised for invalid kernel operations (e.g., scheduling in the past)."""


class _PlainEvent:
    """Heap payload for :meth:`Simulator.call_at` (kernel use only).

    Shares the duck type the drain loops need from
    :class:`ScheduledEvent` — ``callback``, ``args``, ``cancelled``,
    ``_in_heap`` — but skips the cancellation machinery entirely:
    ``cancelled`` is a class attribute, so instances cost one small
    allocation and two attribute stores.  Used by high-rate schedulers
    (the network's per-tick delivery buckets) that never cancel.
    """

    __slots__ = ("callback", "args", "_in_heap")

    cancelled = False

    def __init__(self, callback: Callable[..., None], args: tuple) -> None:
        self.callback = callback
        self.args = args
        self._in_heap = True


class Simulator:
    """Event-driven simulation kernel with a virtual clock.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(1.5, fired.append, "a")
        >>> _ = sim.schedule(0.5, fired.append, "b")
        >>> sim.run()
        2
        >>> fired
        ['b', 'a']
        >>> sim.now
        1.5
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        self._heap: list[tuple[float, int, ScheduledEvent]] = []
        self._cancelled_in_heap: int = 0
        self._events_processed: int = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the queue.

        O(1): the kernel counts cancellations as they happen instead of
        scanning the heap.
        """
        return len(self._heap) - self._cancelled_in_heap

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far."""
        return self._events_processed

    def _note_cancelled(self) -> None:
        """Bookkeeping upcall from ``ScheduledEvent.cancel`` (kernel use)."""
        self._cancelled_in_heap += 1

    def attach_telemetry(self, telemetry) -> None:
        """Expose kernel health as lazy gauges on a telemetry registry.

        Supplier gauges are only read when the registry is sampled, so
        this costs the event loops nothing: the drain code is untouched
        and no per-event work is added.
        """
        registry = telemetry.registry
        registry.gauge("sim.now", supplier=lambda: self._now)
        registry.gauge("sim.pending", supplier=lambda: float(self.pending))
        registry.gauge(
            "sim.events_processed",
            supplier=lambda: float(self._events_processed),
        )
        registry.gauge(
            "sim.cancelled_in_heap",
            supplier=lambda: float(self._cancelled_in_heap),
        )

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now.

        Args:
            delay: Non-negative relative delay in simulated seconds.
            callback: Function to invoke.
            *args: Positional arguments for the callback.

        Returns:
            A cancellable handle for the scheduled event.

        Raises:
            SimulationError: If ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``.

        Raises:
            SimulationError: If ``time`` precedes the current clock.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = ScheduledEvent(time=time, seq=seq, callback=callback, args=args)
        event._sim = self
        event._in_heap = True
        heappush(self._heap, (time, seq, event))
        return event

    def call_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Schedule a *non-cancellable* ``callback(*args)`` at ``time``.

        The cheap sibling of :meth:`schedule_at` for hot-path callers
        that never cancel: no :class:`ScheduledEvent` handle is created
        or returned.  Fires in the same ``(time, seq)`` order as any
        other event.

        Raises:
            SimulationError: If ``time`` precedes the current clock.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (time, seq, _PlainEvent(callback, args)))

    def call_every(
        self,
        period: float,
        callback: Callable[..., None],
        *args: Any,
        horizon: float | None = None,
    ) -> None:
        """Fire ``callback(*args)`` every ``period`` seconds, starting one
        period from now.

        Built on the non-cancellable :meth:`call_at` chain, so callers
        that need periodic work without the
        :class:`~repro.sim.process.PeriodicTimer` handle machinery (the
        auditor's structural probes) pay one small allocation per tick.
        ``horizon`` bounds the chain: no tick is scheduled past it, so a
        bounded run's event queue still drains.  Without a horizon the
        chain reschedules forever — only appropriate under
        :meth:`run_until`.

        Raises:
            SimulationError: If ``period`` is not positive.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive (got {period})")

        def tick() -> None:
            callback(*args)
            following = self._now + period
            if horizon is None or following <= horizon:
                self.call_at(following, tick)

        first = self._now + period
        if horizon is None or first <= horizon:
            self.call_at(first, tick)

    def next_event_time(self) -> float | None:
        """Timestamp of the next live (non-cancelled) event, or None.

        Non-destructive peek used by the sharded coordinator to compute
        the global lower bound of the next barrier window.  Cancelled
        records found at the top of the heap are discarded on the way
        (the same lazy deletion every drain loop performs).
        """
        heap = self._heap
        while heap:
            when, _, event = heap[0]
            if event.cancelled:
                heappop(heap)
                event._in_heap = False
                self._cancelled_in_heap -= 1
                continue
            return when
        return None

    def run_before(self, bound: float) -> int:
        """Run all events with timestamps strictly ``< bound``.

        The conservative-window sibling of :meth:`run_until`: a shard
        worker owns every event below the barrier bound (cross-shard
        messages cannot arrive earlier than one network delay past the
        window start), so it drains ``[now, bound)`` and leaves the
        clock at the last fired event — never advancing to ``bound``
        itself, where remote messages may still be injected.

        Returns:
            The number of events fired by this call.
        """
        if bound < self._now:
            raise SimulationError(
                f"cannot run backwards to t={bound} from t={self._now}"
            )
        heap = self._heap
        fired = 0
        while heap:
            when, _, event = heap[0]
            if event.cancelled:
                heappop(heap)
                event._in_heap = False
                self._cancelled_in_heap -= 1
                continue
            if when >= bound:
                break
            heappop(heap)
            event._in_heap = False
            self._now = when
            self._events_processed += 1
            event.callback(*event.args)
            fired += 1
        return fired

    def _pop_live(self) -> ScheduledEvent | None:
        """Pop the next non-cancelled event, discarding cancelled ones."""
        heap = self._heap
        while heap:
            event = heappop(heap)[2]
            event._in_heap = False
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            return event
        return None

    def step(self) -> bool:
        """Fire the next pending event, advancing the clock.

        Returns:
            True if an event fired, False if the queue was empty.
        """
        event = self._pop_live()
        if event is None:
            return False
        self._now = event.time
        self._events_processed += 1
        event.callback(*event.args)
        return True

    def run(self, max_events: int | None = None) -> int:
        """Run until the event queue drains (or ``max_events`` fire).

        Args:
            max_events: Optional safety bound on the number of events.

        Returns:
            The number of events fired by this call.
        """
        heap = self._heap
        fired = 0
        while heap and (max_events is None or fired < max_events):
            time, _, event = heappop(heap)
            event._in_heap = False
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            self._now = time
            self._events_processed += 1
            event.callback(*event.args)
            fired += 1
        return fired

    def run_until(self, time: float) -> int:
        """Run all events with timestamps ``<= time``; set the clock to ``time``.

        Events scheduled during the run are processed too, provided they
        fall within the horizon.

        Returns:
            The number of events fired by this call.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run backwards to t={time} from t={self._now}"
            )
        heap = self._heap
        fired = 0
        while heap:
            when, _, event = heap[0]
            if event.cancelled:
                heappop(heap)
                event._in_heap = False
                self._cancelled_in_heap -= 1
                continue
            if when > time:
                break
            heappop(heap)
            event._in_heap = False
            self._now = when
            self._events_processed += 1
            event.callback(*event.args)
            fired += 1
        self._now = time
        return fired
