"""The discrete-event simulator core.

A :class:`Simulator` owns a virtual clock and a priority queue of
:class:`~repro.sim.events.ScheduledEvent` records.  Components schedule
callbacks at relative delays; the kernel fires them in timestamp order,
advancing the clock discontinuously.  Equal timestamps fire in the order
they were scheduled, which — together with seeded random streams — makes
every simulation run bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.sim.events import ScheduledEvent


class SimulationError(RuntimeError):
    """Raised for invalid kernel operations (e.g., scheduling in the past)."""


class Simulator:
    """Event-driven simulation kernel with a virtual clock.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(1.5, fired.append, "a")
        >>> _ = sim.schedule(0.5, fired.append, "b")
        >>> sim.run()
        2
        >>> fired
        ['b', 'a']
        >>> sim.now
        1.5
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        self._heap: list[ScheduledEvent] = []
        self._events_processed: int = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the queue."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far."""
        return self._events_processed

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now.

        Args:
            delay: Non-negative relative delay in simulated seconds.
            callback: Function to invoke.
            *args: Positional arguments for the callback.

        Returns:
            A cancellable handle for the scheduled event.

        Raises:
            SimulationError: If ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``.

        Raises:
            SimulationError: If ``time`` precedes the current clock.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = ScheduledEvent(time=time, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def step(self) -> bool:
        """Fire the next pending event, advancing the clock.

        Returns:
            True if an event fired, False if the queue was empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.fire()
            return True
        return False

    def run(self, max_events: int | None = None) -> int:
        """Run until the event queue drains (or ``max_events`` fire).

        Args:
            max_events: Optional safety bound on the number of events.

        Returns:
            The number of events fired by this call.
        """
        fired = 0
        while max_events is None or fired < max_events:
            if not self.step():
                break
            fired += 1
        return fired

    def run_until(self, time: float) -> int:
        """Run all events with timestamps ``<= time``; set the clock to ``time``.

        Events scheduled during the run are processed too, provided they
        fall within the horizon.

        Returns:
            The number of events fired by this call.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run backwards to t={time} from t={self._now}"
            )
        fired = 0
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if event.time > time:
                break
            heapq.heappop(self._heap)
            self._now = event.time
            self._events_processed += 1
            event.fire()
            fired += 1
        self._now = time
        return fired
