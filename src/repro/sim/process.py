"""Recurring-timer helper built on the simulation kernel.

Several protocol components fire periodically: Chord stabilization,
notification-buffer flushes, subscription-expiration sweeps and the
workload injectors. :class:`PeriodicTimer` packages the re-scheduling
pattern so each component only supplies its tick callback and period.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.events import ScheduledEvent
from repro.sim.kernel import Simulator


class PeriodicTimer:
    """Fires a callback every ``period`` simulated seconds until stopped.

    The first tick fires ``period`` seconds after :meth:`start` (or after
    ``first_delay`` if given).  Re-arming happens *before* the callback
    runs, so a callback may safely call :meth:`stop` to end the series.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], None],
    ) -> None:
        if period <= 0:
            raise ValueError(f"timer period must be positive, got {period}")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._handle: ScheduledEvent | None = None
        self._running = False

    @property
    def running(self) -> bool:
        """True while the timer is armed."""
        return self._running

    @property
    def period(self) -> float:
        """The tick period in simulated seconds."""
        return self._period

    def start(self, first_delay: float | None = None) -> None:
        """Arm the timer.

        Args:
            first_delay: Delay before the first tick; defaults to the
                period. Subsequent ticks are one period apart.
        """
        if self._running:
            return
        self._running = True
        delay = self._period if first_delay is None else first_delay
        self._handle = self._sim.schedule(delay, self._tick)

    def stop(self) -> None:
        """Disarm the timer; safe to call from within the tick callback."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        if not self._running:
            return
        self._handle = self._sim.schedule(self._period, self._tick)
        self._callback()
