"""Discrete-event simulation kernel.

This package provides the deterministic event-driven substrate on which
the Chord overlay and the content-based pub/sub layer run:

- :class:`~repro.sim.kernel.Simulator` -- the event loop: a priority
  queue of timestamped callbacks with a virtual clock.
- :class:`~repro.sim.events.ScheduledEvent` -- a cancellable handle for
  a scheduled callback.
- :class:`~repro.sim.process.PeriodicTimer` -- a recurring timer built
  on the kernel.
- :class:`~repro.sim.rng.RandomStreams` -- named, independently seeded
  random streams so that components draw from decoupled sequences and
  experiments are reproducible.

All simulated time is expressed in **seconds** as floats. The paper's
default message delay of 50 ms is therefore ``0.05``.
"""

from repro.sim.events import ScheduledEvent
from repro.sim.kernel import Simulator
from repro.sim.process import PeriodicTimer
from repro.sim.rng import RandomStreams

__all__ = ["ScheduledEvent", "Simulator", "PeriodicTimer", "RandomStreams"]
