"""Scheduled-event handles for the simulation kernel.

The kernel hands out a :class:`ScheduledEvent` for every scheduled
callback.  Holding the handle allows the owner to cancel the callback
before it fires (used, e.g., by subscription-expiration timers that are
refreshed, and by periodic timers that are stopped).

The handle is deliberately lightweight: a ``__slots__`` class whose
instances the kernel stores *inside* plain ``(time, seq, event)`` heap
tuples, so the hot heap comparisons run on C tuples instead of calling
back into Python.  Ordering by ``(time, seq)`` is still implemented on
the class itself because tests (and any external priority queues) rely
on the handles being directly heapable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:
    from repro.sim.kernel import Simulator


class ScheduledEvent:
    """A callback scheduled at a simulated time.

    Instances are ordered by ``(time, seq)`` so that a heap of events
    breaks timestamp ties in FIFO scheduling order, which keeps runs
    deterministic.

    Attributes:
        time: Absolute simulated time (seconds) at which to fire.
        seq: Monotonic tie-breaker assigned by the kernel.
        callback: The function invoked when the event fires.
        args: Positional arguments passed to ``callback``.
        cancelled: True once :meth:`cancel` has been called; cancelled
            events are skipped by the kernel (lazy deletion).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim", "_in_heap")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = cancelled
        # Set by the owning kernel so cancel() can keep its live-event
        # counter exact; None for handles built outside a Simulator.
        self._sim: "Simulator | None" = None
        self._in_heap = False

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __le__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) <= (other.time, other.seq)

    def __gt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) > (other.time, other.seq)

    def __ge__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) >= (other.time, other.seq)

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"ScheduledEvent(time={self.time!r}, seq={self.seq}{state})"

    def cancel(self) -> None:
        """Prevent this event from firing.

        Idempotent. The event remains in the kernel's heap but is
        discarded when popped; the kernel's cancelled-count is bumped
        so ``Simulator.pending`` stays O(1).
        """
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None and self._in_heap:
            sim._note_cancelled()

    def fire(self) -> None:
        """Invoke the callback (kernel use only)."""
        self.callback(*self.args)
