"""Scheduled-event handles for the simulation kernel.

The kernel hands out a :class:`ScheduledEvent` for every scheduled
callback.  Holding the handle allows the owner to cancel the callback
before it fires (used, e.g., by subscription-expiration timers that are
refreshed, and by periodic timers that are stopped).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable


@dataclasses.dataclass(order=True, slots=True)
class ScheduledEvent:
    """A callback scheduled at a simulated time.

    Instances are ordered by ``(time, seq)`` so that the kernel's heap
    breaks timestamp ties in FIFO scheduling order, which keeps runs
    deterministic.

    Attributes:
        time: Absolute simulated time (seconds) at which to fire.
        seq: Monotonic tie-breaker assigned by the kernel.
        callback: The function invoked when the event fires.
        args: Positional arguments passed to ``callback``.
        cancelled: True once :meth:`cancel` has been called; cancelled
            events are skipped by the kernel (lazy deletion).
    """

    time: float
    seq: int
    callback: Callable[..., None] = dataclasses.field(compare=False)
    args: tuple[Any, ...] = dataclasses.field(default=(), compare=False)
    cancelled: bool = dataclasses.field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent this event from firing.

        Idempotent. The event remains in the kernel's heap but is
        discarded when popped.
        """
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback (kernel use only)."""
        self.callback(*self.args)
