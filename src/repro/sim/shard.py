"""Sharded parallel execution of one simulation run.

The identifier ring is partitioned into K contiguous arcs; each arc's
event loop runs in its own worker (a forked process, or inline for
debugging and K=1 parity checks) over its own
:class:`~repro.sim.kernel.Simulator`.  Workers advance in lockstep
through *conservative windows*: the one-hop network delay is a
lookahead guarantee — no cross-shard message sent at or after the
window start ``t0`` can arrive before ``t0 + delay`` — so every worker
may safely drain ``[t0, t0 + delay)`` without hearing from its peers.
At the window barrier the coordinator collects each shard's outbox
(cross-shard sends already stamped with their arrival time, see
:class:`~repro.overlay.network.ShardNetwork`) and routes it into the
destination shards' ``(dst, arrival)`` inbox buckets, reusing the
batched bucket drain as the shard-boundary unit.

Determinism:

- Request ids are drawn from disjoint residue classes
  (``itertools.count(shard + 1, num_shards)``), so no two shards can
  mint the same id; with K=1 the stream is exactly the serial
  ``count(1)``.
- Remote messages are injected in (source shard id, send sequence)
  order, after the destination's own same-tick sends — a fixed merge
  order, so repeated runs are bit-for-bit identical for any K.
- With K=1 nothing ever crosses a shard boundary and every event fires
  in the same (time, seq) order as the serial kernel, so the behavior
  fingerprint is bit-for-bit equal to a serial
  :meth:`~repro.workload.trace.Trace.replay` of the same trace.

The merged run is audited *post hoc*: workers record the application
hook stream (subscribe/publish/notify) with an :class:`AuditTap`, and
the coordinator replays the merged stream into the real
:class:`~repro.audit.Auditor` against a shim system, so the delivery
oracle of the serial runner applies unchanged.
"""

from __future__ import annotations

import dataclasses
import itertools
import logging
import multiprocessing
from time import perf_counter
from typing import TYPE_CHECKING, Sequence

from repro.audit import AuditConfig, Auditor, AuditReport
from repro.core.mappings import make_mapping
from repro.core.mappings.base import AKMapping, Discretization
from repro.core.system import PubSubSystem
from repro.errors import ConfigurationError
from repro.metrics.memory import peak_rss_bytes, reset_peak_rss
from repro.metrics.recorder import MetricsRecorder
from repro.overlay import api as overlay_api
from repro.overlay.can import CanOverlay
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.overlay.network import FixedDelay, ShardNetwork
from repro.overlay.pastry import PastryOverlay
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams
from repro.telemetry import Telemetry, current as current_telemetry
from repro.telemetry.profile import ShardProfiler

if TYPE_CHECKING:
    from repro.experiments.config import ExperimentConfig
    from repro.workload.trace import Trace, TraceOp

logger = logging.getLogger(__name__)

#: The coordinator logs a shard-imbalance warning when the busiest
#: shard carries more than this multiple of the median shard load.
LOAD_IMBALANCE_THRESHOLD = 2.0


def ring_node_ids(config: "ExperimentConfig") -> list[int]:
    """The run's ring membership, in the serial builder's sample order.

    Every worker must insert the same ids in the same order (the CAN
    tessellation depends on insertion order), and the workload trace
    must draw injection nodes from the same population — so the
    ``ring`` substream sample of
    :func:`repro.experiments.runner.build_system` is reproduced here
    verbatim.
    """
    keyspace = KeySpace(config.key_bits)
    return RandomStreams(config.seed).stream("ring").sample(
        range(keyspace.size), config.nodes
    )


def partition_ring(
    node_ids: Sequence[int],
    num_shards: int,
    cuts: Sequence[int] | None = None,
) -> tuple[list[frozenset[int]], dict[int, int]]:
    """Split the ring into ``num_shards`` contiguous identifier arcs.

    Returns the per-shard id sets (ascending-arc order) and the
    ``node id -> shard`` map.  By default arcs are near-equal in node
    count; ``cuts`` overrides the arc boundaries with explicit start
    offsets into the ascending id order — ``cuts[s]`` is the index of
    shard ``s``'s first node (``cuts[0]`` must be 0, offsets strictly
    increasing, every arc non-empty).  That is the feedback channel of
    the execution profiler's rebalance advisor
    (:func:`repro.telemetry.profile.suggest_cuts`): traffic-weighted
    cut points equalize measured load per arc instead of node count.
    Contiguity keeps intra-shard routing hops (successor walks, finger
    chains within the arc) local, which is what makes the conservative
    windows worth their barrier.
    """
    if num_shards < 1:
        raise ConfigurationError(f"need at least one shard, got {num_shards}")
    if num_shards > len(node_ids):
        raise ConfigurationError(
            f"{num_shards} shards for {len(node_ids)} nodes: every shard "
            "needs at least one node"
        )
    ordered = sorted(node_ids)
    n = len(ordered)
    if cuts is None:
        starts = [n * shard // num_shards for shard in range(num_shards)]
    else:
        starts = [int(c) for c in cuts]
        if len(starts) != num_shards:
            raise ConfigurationError(
                f"{len(starts)} cut points for {num_shards} shards: need "
                "exactly one start offset per shard"
            )
        if starts[0] != 0:
            raise ConfigurationError(
                f"cuts must start at offset 0, got {starts[0]}"
            )
        for shard in range(1, num_shards):
            if starts[shard] <= starts[shard - 1]:
                raise ConfigurationError(
                    f"cut points must be strictly increasing, got {starts}"
                )
        if starts[-1] >= n:
            raise ConfigurationError(
                f"cut point {starts[-1]} out of range for {n} nodes"
            )
    bounds = starts + [n]
    locals_: list[frozenset[int]] = []
    shard_of: dict[int, int] = {}
    for shard in range(num_shards):
        arc = ordered[bounds[shard]:bounds[shard + 1]]
        locals_.append(frozenset(arc))
        for node_id in arc:
            shard_of[node_id] = shard
    return locals_, shard_of


class AuditTap:
    """Records the application-level audit hook stream of one worker.

    Implements the same four hooks the :class:`~repro.audit.Auditor`
    exposes, but only appends ``(time, seq, kind, args)`` records; the
    coordinator merges the per-shard streams by ``(time, shard, seq)``
    and replays them into a real auditor after the run.
    """

    __slots__ = ("records", "_seq")

    def __init__(self) -> None:
        self.records: list[tuple[float, int, str, tuple]] = []
        self._seq = 0

    def _record(self, now: float, kind: str, args: tuple) -> None:
        self.records.append((now, self._seq, kind, args))
        self._seq += 1

    def on_subscribe(self, subscription, subscriber, ttl, now) -> None:
        self._record(now, "subscribe", (subscription, subscriber, ttl))

    def on_unsubscribe(self, subscription_id, now) -> None:
        self._record(now, "unsubscribe", (subscription_id,))

    def on_publish(self, event, publisher, keys, request_id, now) -> None:
        self._record(now, "publish", (event, publisher, keys, request_id))

    def on_notifications(self, node_id, notifications, now) -> None:
        self._record(now, "notifications", (node_id, notifications))


@dataclasses.dataclass
class ShardResult:
    """Final payload one worker hands back at the horizon."""

    recorder: MetricsRecorder
    audit_records: list[tuple[float, int, str, tuple]]
    events_processed: int
    now: float
    #: Worker-process RSS high-water mark (bytes).  Meaningful in fork
    #: mode, where each worker resets its mark at startup; inline
    #: workers share the coordinator process and report its peak.
    peak_rss_bytes: int = 0
    #: Wall-clock spent inside the final run-to-horizon stretch and the
    #: events it fired (profiled runs only; zero otherwise).
    finish_busy_s: float = 0.0
    finish_events: int = 0
    #: One-hop sends per local node — the rebalance advisor's traffic
    #: measurement (None unless the run was profiled).
    node_sends: dict[int, int] | None = None


def build_shard_mapping(config: "ExperimentConfig") -> AKMapping:
    """The ak-mapping for one configuration (shared build recipe).

    Workers, the audit replay and the result assembly all need the
    mapping; this mirrors :func:`repro.experiments.runner.build_system`
    exactly so keys agree across every copy.
    """
    keyspace = KeySpace(config.key_bits)
    space = config.workload.make_space()
    discretization = Discretization.uniform(
        space.dimensions, config.discretization_width
    )
    mapping_kwargs: dict[str, object] = {"discretization": discretization}
    if config.mapping == "attribute-split":
        mapping_kwargs["event_attribute"] = config.event_attribute
    return make_mapping(config.mapping, space, keyspace, **mapping_kwargs)


class ShardWorker:
    """One shard's full simulation stack plus its barrier protocol.

    The stack mirrors :func:`repro.experiments.runner.build_system`
    bit for bit — same construction order, same overlay parameters —
    except the network is a :class:`ShardNetwork` and only the local
    arc's node objects are materialized (``build_ring(..., local=...)``
    records full ring membership everywhere so routing geometry agrees,
    but registers handlers and pub/sub state for local ids only).
    """

    def __init__(
        self,
        config: "ExperimentConfig",
        shard: int,
        num_shards: int,
        ring_ids: list[int],
        local: frozenset[int],
        ops: list["TraceOp"],
        snapshot_times: Sequence[float],
        audit: bool,
        profile: bool = False,
    ) -> None:
        self.shard = shard
        # Disjoint residue classes: shard s mints s+1, s+1+K, s+1+2K, …
        # K=1 degenerates to the serial count(1) stream.
        self._counter = itertools.count(shard + 1, num_shards)
        sim = Simulator()
        keyspace = KeySpace(config.key_bits)
        network = ShardNetwork(
            sim, FixedDelay(config.message_delay), local=local
        )
        if config.overlay == "pastry":
            overlay = PastryOverlay(sim, keyspace, network=network)
        elif config.overlay == "can":
            overlay = CanOverlay(sim, keyspace, network=network)
        else:
            overlay = ChordOverlay(
                sim, keyspace, network=network,
                cache_capacity=config.cache_capacity,
            )
        overlay.build_ring(ring_ids, local=local)
        mapping = build_shard_mapping(config)
        system = PubSubSystem(sim, overlay, mapping, config.pubsub_config())
        self.tap: AuditTap | None = None
        if audit:
            self.tap = AuditTap()
            system.attach_auditor(self.tap)
        # Schedule the local slice of the trace exactly like
        # Trace.replay does for the whole trace.
        for op in ops:
            if op.kind == "sub":
                sim.schedule_at(
                    op.time, system.subscribe, op.node, op.subscription, op.ttl
                )
            else:
                sim.schedule_at(op.time, system.publish, op.node, op.event)
        for time in snapshot_times:
            sim.schedule_at(time, system.snapshot_storage)
        self.sim = sim
        self.network = network
        self.system = system
        # Per-node send metering for the execution profiler's rebalance
        # advisor; a pure wall-clock/traffic observer, so profiled runs
        # stay bit-for-bit behavior-identical to unprofiled ones.
        self._node_sends = network.meter_sends() if profile else None

    # -- barrier protocol ---------------------------------------------------

    def poll(self, injections: list) -> float | None:
        """Inject last window's remote arrivals; report the next event."""
        if injections:
            self.network.inject(injections)
        return self.sim.next_event_time()

    def run_window(self, bound: float) -> tuple[list, int, float]:
        """Drain ``[now, bound)``; return (outbox, events fired, busy seconds).

        Busy time is the wall-clock spent inside ``run_before`` —
        worker-measured, so the coordinator's round profile can split
        each shard's slot into busy vs. stall (barrier wait + pipe)
        without a clock shared across processes.
        """
        previous = overlay_api._request_counter
        overlay_api._request_counter = self._counter
        start = perf_counter()
        try:
            fired = self.sim.run_before(bound)
        finally:
            busy = perf_counter() - start
            overlay_api._request_counter = previous
        return self.network.drain_outbox(), fired, busy

    def finish(self, horizon: float) -> ShardResult:
        """Run out the clock to the horizon and snapshot final state.

        Cross-shard sends made during this last stretch necessarily
        arrive after the horizon (the coordinator only enters the
        finish phase once every remaining event lies within one delay
        of it), so the final outbox is discarded — exactly the
        in-flight truncation a serial ``run_until(horizon)`` performs.
        """
        previous = overlay_api._request_counter
        overlay_api._request_counter = self._counter
        start = perf_counter()
        try:
            finish_events = self.sim.run_until(horizon)
        finally:
            busy = perf_counter() - start
            overlay_api._request_counter = previous
        self.network.drain_outbox()
        self.system.snapshot_storage()
        return ShardResult(
            recorder=self.system.recorder,
            audit_records=self.tap.records if self.tap is not None else [],
            events_processed=self.sim.events_processed,
            now=self.sim.now,
            peak_rss_bytes=peak_rss_bytes(),
            finish_busy_s=busy,
            finish_events=finish_events,
            node_sends=dict(self._node_sends)
            if self._node_sends is not None
            else None,
        )


class _InlineShard:
    """Same submit/result surface as a forked worker, in-process."""

    def __init__(self, worker: ShardWorker) -> None:
        self._worker = worker
        self._result: object = None

    def submit(self, op: str, arg) -> None:
        if op == "poll":
            self._result = self._worker.poll(arg)
        elif op == "run":
            self._result = self._worker.run_window(arg)
        else:
            self._result = self._worker.finish(arg)

    def result(self):
        result = self._result
        self._result = None
        return result

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


def _worker_main(conn, config, shard, num_shards, ring_ids, local, ops,
                 snapshot_times, audit, profile) -> None:
    """Forked worker loop: build the stack, then serve barrier requests."""
    # Start the RSS high-water mark at the post-fork footprint so the
    # final ShardResult reports this worker's own peak (stack build
    # plus run), not whatever the parent had touched before forking.
    reset_peak_rss()
    worker = ShardWorker(
        config, shard, num_shards, ring_ids, local, ops, snapshot_times,
        audit, profile,
    )
    while True:
        op, arg = conn.recv()
        if op == "poll":
            conn.send(worker.poll(arg))
        elif op == "run":
            conn.send(worker.run_window(arg))
        else:
            conn.send(worker.finish(arg))
            conn.close()
            return


class _ForkShard:
    """Coordinator-side handle of one forked worker.

    The fork start method shares the parent's memory copy-on-write, so
    the (potentially large) trace and ring are never pickled; only
    outbox batches and the final :class:`ShardResult` cross the pipe.
    """

    def __init__(self, ctx, args: tuple) -> None:
        self._conn, child_conn = ctx.Pipe()
        self._process = ctx.Process(
            target=_worker_main, args=(child_conn, *args), daemon=True
        )
        self._process.start()
        child_conn.close()

    def submit(self, op: str, arg) -> None:
        self._conn.send((op, arg))

    def result(self):
        return self._conn.recv()

    def close(self) -> None:
        self._conn.close()
        self._process.join(timeout=30)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()
            self._process.join()


# -- audit replay -----------------------------------------------------------


class _ShimOverlay:
    """What the replay auditor needs of an overlay: size and liveness.

    Sharded runs are churn-free (the trace carries only subscribe and
    publish operations), so every node is alive for the whole run.
    """

    __slots__ = ("_n",)

    def __init__(self, n: int) -> None:
        self._n = n

    def __len__(self) -> int:
        return self._n

    def is_alive(self, node_id: int) -> bool:
        return True


class _ReplaySystem:
    """The slice of PubSubSystem the auditor reads, over merged state."""

    def __init__(self, sim, mapping, config, n_nodes, recorder, telemetry):
        self.sim = sim
        self.mapping = mapping
        self.config = config
        self.overlay = _ShimOverlay(n_nodes)
        self.recorder = recorder
        self.telemetry = (
            telemetry if telemetry is not None else current_telemetry()
        )
        self.auditor = None

    def attach_auditor(self, auditor) -> None:
        self.auditor = auditor


def replay_audit(
    config: "ExperimentConfig",
    recorder: MetricsRecorder,
    records: list[tuple[float, int, int, str, tuple]],
    horizon: float,
    audit: AuditConfig,
    telemetry: Telemetry | None = None,
) -> AuditReport:
    """Replay the merged audit hook stream into a real :class:`Auditor`.

    ``records`` are ``(time, shard, seq, kind, args)`` tuples, already
    sorted; hooks fire on a fresh simulator in exactly that order, so
    the shadow ledger and the delivery oracle see the same global
    history a serial auditor would have observed.  Structural probes
    need a live overlay and are skipped (the per-worker routing state
    was already serially verified by the K=1 parity contract).
    """
    sim = Simulator()
    mapping = build_shard_mapping(config)
    shim = _ReplaySystem(
        sim, mapping, config.pubsub_config(), config.nodes, recorder, telemetry
    )
    auditor = Auditor(
        shim,
        AuditConfig(
            probe_period=None,
            delivery_deadline=audit.delivery_deadline,
            grace=audit.grace,
        ),
    )
    for time, _shard, _seq, kind, args in records:
        sim.call_at(time, getattr(auditor, "on_" + kind), *args, time)
    # Truncate at the horizon like the serial runner: deadline
    # evaluations past it stay pending and finalize() marks their
    # publications indeterminate instead of deriving missed-delivery
    # violations from in-flight truncation.
    sim.run_until(horizon)
    return auditor.finalize()


# -- the coordinator --------------------------------------------------------


@dataclasses.dataclass
class ShardRunReport:
    """Merged outcome of one sharded run.

    Attributes:
        recorder: Metrics merged across shards in shard order.
        audit: Delivery-oracle report from the post-hoc replay (None
            when the run was not audited).
        num_shards: K.
        horizon: The simulated end time every worker ran to.
        barrier_rounds: Conservative windows executed.
        remote_messages: One-hop messages that crossed a shard boundary.
        barrier_stalls: (shard, window) pairs that fired zero events —
            the load-imbalance signal of the tick-barrier design.
        events_per_shard: Kernel events fired by each worker.
        peak_rss_by_shard: Each worker's RSS high-water mark in bytes
            (per forked process; inline workers all report the shared
            coordinator process).
        load_by_shard: One-hop messages sent by each shard's nodes,
            read from the per-shard recorders before the merge — the
            coordinator-side per-shard load aggregate of the load
            observatory (workers run telemetry-disabled).
        profile: The execution profiler that rode this run (None unless
            profiling was requested) — per-round busy/stall timelines,
            the critical-path summary, and the rebalance advisor.
    """

    recorder: MetricsRecorder
    audit: AuditReport | None
    num_shards: int
    horizon: float
    barrier_rounds: int
    remote_messages: int
    barrier_stalls: int
    events_per_shard: list[int]
    peak_rss_by_shard: list[int]
    load_by_shard: list[int]
    profile: ShardProfiler | None = None

    @property
    def load_imbalance(self) -> float:
        """Max/median shard load ratio (0.0 when the median is zero)."""
        return load_imbalance_ratio(self.load_by_shard)


def load_imbalance_ratio(load_by_shard: Sequence[int]) -> float:
    """Max/median shard load ratio (0.0 when the median is zero)."""
    if not load_by_shard:
        return 0.0
    ordered = sorted(load_by_shard)
    n = len(ordered)
    mid = n // 2
    median = (
        ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2
    )
    if median <= 0:
        return 0.0
    return max(ordered) / median


def run_sharded(
    config: "ExperimentConfig",
    trace: "Trace",
    num_shards: int,
    *,
    mode: str = "fork",
    telemetry: Telemetry | None = None,
    audit: AuditConfig | None = None,
    horizon_slack: float = 60.0,
    storage_samples: int = 24,
    profile: ShardProfiler | None = None,
    cuts: Sequence[int] | None = None,
) -> ShardRunReport:
    """Execute a trace across ``num_shards`` parallel shard workers.

    Args:
        config: The experiment configuration (its ``shards`` field is
            ignored here — ``num_shards`` is explicit).
        trace: The full pre-generated workload trace.
        num_shards: K; 1 reproduces a serial replay bit for bit.
        mode: ``"fork"`` (worker processes) or ``"inline"`` (same
            process; debugging, and exact-parity tests without fork).
        telemetry: Optional coordinator-side observability: per-shard
            ``sim.*`` gauges and ``shard.*`` barrier counters, sampled
            on the simulated clock.  Workers always run with telemetry
            disabled; the coordinator owns the observable surface.
        audit: Optional delivery-oracle configuration; the merged hook
            stream is replayed post hoc (structural probes are skipped).
        horizon_slack: Seconds past the last trace op, matching
            :meth:`~repro.workload.trace.Trace.replay`.
        storage_samples: Periodic storage snapshots per worker.
        profile: Optional execution profiler
            (:class:`~repro.telemetry.profile.ShardProfiler` with
            ``num_shards`` shards): records per-round busy/stall/traffic
            timelines and per-node sends.  Pure wall-clock observation —
            the simulated outcome is bit-for-bit identical either way.
            Attached to ``telemetry.profile`` (when enabled) so the
            JSONL/Perfetto exports carry it.
        cuts: Optional explicit arc start offsets for
            :func:`partition_ring` — the rebalance advisor's feedback
            channel (``suggest_cuts`` output goes here).
    """
    if mode not in ("fork", "inline"):
        raise ConfigurationError(f"unknown shard mode {mode!r}")
    delay = config.message_delay
    if num_shards > 1 and delay <= 0:
        raise ConfigurationError(
            "sharded execution needs message_delay > 0: the one-hop delay "
            "is the conservative window's lookahead"
        )
    if profile is not None and profile.num_shards != num_shards:
        raise ConfigurationError(
            f"profiler sized for {profile.num_shards} shards attached to a "
            f"{num_shards}-shard run"
        )
    ring_ids = ring_node_ids(config)
    locals_, shard_of = partition_ring(ring_ids, num_shards, cuts)
    current_cuts = [0]
    for arc in locals_[:-1]:
        current_cuts.append(current_cuts[-1] + len(arc))
    ops = trace.ops
    last = ops[-1].time if ops else 0.0
    horizon = last + horizon_slack
    snapshot_times = [
        horizon * sample / storage_samples
        for sample in range(1, storage_samples + 1)
    ]
    per_shard_ops: list[list["TraceOp"]] = [[] for _ in range(num_shards)]
    for op in ops:
        per_shard_ops[shard_of[op.node]].append(op)

    audited = audit is not None
    profiled = profile is not None
    workers: list[_InlineShard | _ForkShard] = []
    if mode == "inline":
        for shard in range(num_shards):
            workers.append(_InlineShard(ShardWorker(
                config, shard, num_shards, ring_ids, locals_[shard],
                per_shard_ops[shard], snapshot_times, audited, profiled,
            )))
    else:
        ctx = multiprocessing.get_context("fork")
        for shard in range(num_shards):
            workers.append(_ForkShard(ctx, (
                config, shard, num_shards, ring_ids, locals_[shard],
                per_shard_ops[shard], snapshot_times, audited, profiled,
            )))

    # Coordinator-side observability: gauges read these arrays lazily.
    now_by_shard = [0.0] * num_shards
    fired_by_shard = [0] * num_shards
    tel = telemetry if telemetry is not None and telemetry.enabled else None
    if tel is not None:
        registry = tel.registry
        for shard in range(num_shards):
            registry.gauge(
                "sim.now", shard=shard,
                supplier=(lambda s=shard: now_by_shard[s]),
            )
            registry.gauge(
                "sim.events_processed", shard=shard,
                supplier=(lambda s=shard: float(fired_by_shard[s])),
            )
        rounds_counter = registry.counter("shard.barrier_rounds")
        remote_counter = registry.counter("shard.remote_messages")
        stall_counter = registry.counter("shard.barrier_stalls")
        sample_period = horizon / storage_samples
        next_sample = sample_period
        tel.sample(0.0)

    rounds = 0
    remote = 0
    stalls = 0
    injections: list[list] = [[] for _ in range(num_shards)]
    try:
        # A lone shard owns every inbox: no message can cross a
        # boundary, so the whole run is one serial finish phase with
        # zero barrier overhead (this is the `--shards 1` parity path).
        while num_shards > 1:
            for shard, worker in enumerate(workers):
                worker.submit("poll", injections[shard])
            next_times = [worker.result() for worker in workers]
            live = [time for time in next_times if time is not None]
            t0 = min(live) if live else None
            if t0 is None or t0 > horizon:
                break
            bound = t0 + delay
            if bound > horizon:
                # Every remaining event lies within one delay of the
                # horizon: no cross-shard send from here on can arrive
                # in time, so the workers can run out independently.
                break
            # The round wall-clock spans run-submit to outboxes routed:
            # with the workers' own busy measurements, everything that
            # is not busy is stall (barrier wait + pipe I/O), so
            # busy + stall == wall holds exactly per shard per round.
            round_start = perf_counter() if profiled else 0.0
            for worker in workers:
                worker.submit("run", bound)
            injections = [[] for _ in range(num_shards)]
            rounds += 1
            busy_list = [0.0] * num_shards
            fired_list = [0] * num_shards
            sent_rows = (
                [[0] * num_shards for _ in range(num_shards)]
                if profiled else None
            )
            for shard, worker in enumerate(workers):
                outbox, fired, busy = worker.result()
                busy_list[shard] = busy
                fired_list[shard] = fired
                fired_by_shard[shard] += fired
                now_by_shard[shard] = bound
                if fired == 0:
                    stalls += 1
                if sent_rows is None:
                    for item in outbox:
                        injections[shard_of[item[0]]].append(item)
                        remote += 1
                else:
                    row = sent_rows[shard]
                    for item in outbox:
                        dst_shard = shard_of[item[0]]
                        injections[dst_shard].append(item)
                        remote += 1
                        row[dst_shard] += 1
            if profiled:
                profile.on_round(
                    t0, bound, perf_counter() - round_start,
                    busy_list, fired_list, sent_rows,
                )
            if tel is not None:
                rounds_counter.inc()
                while next_sample <= bound:
                    tel.sample(next_sample)
                    next_sample += sample_period
        finish_start = perf_counter() if profiled else 0.0
        for worker in workers:
            worker.submit("finish", horizon)
        results: list[ShardResult] = [worker.result() for worker in workers]
        if profiled:
            profile.on_finish(
                [result.finish_busy_s for result in results],
                perf_counter() - finish_start,
                [result.finish_events for result in results],
            )
            for result in results:
                if result.node_sends:
                    profile.add_node_loads(result.node_sends)
    finally:
        for worker in workers:
            worker.close()

    # Per-shard load must be read before the merge collapses the
    # per-shard recorders into one; total one-hop sends is the load
    # proxy the skew observatory uses for nodes.
    load_by_shard = [result.recorder.messages.total_sends() for result in results]
    imbalance = load_imbalance_ratio(load_by_shard)
    if profiled:
        profile.finalize(ring_ids, current_cuts, load_by_shard)
        if telemetry is not None:
            telemetry.profile = profile
    if tel is not None:
        for shard, result in enumerate(results):
            now_by_shard[shard] = result.now
            fired_by_shard[shard] = result.events_processed
        remote_counter.inc(remote)
        stall_counter.inc(stalls)
        registry.gauge(
            "shard.load_imbalance", supplier=(lambda: imbalance)
        )
        tel.sample(horizon)
    recorder = MetricsRecorder()
    for result in results:
        recorder.merge_from(result.recorder)

    report: AuditReport | None = None
    if audit is not None:
        merged_records = sorted(
            (
                (time, shard, seq, kind, args)
                for shard, result in enumerate(results)
                for time, seq, kind, args in result.audit_records
            ),
            key=lambda record: record[:3],
        )
        report = replay_audit(
            config, recorder, merged_records, horizon, audit, telemetry
        )

    shard_report = ShardRunReport(
        recorder=recorder,
        audit=report,
        num_shards=num_shards,
        horizon=horizon,
        barrier_rounds=rounds,
        remote_messages=remote,
        barrier_stalls=stalls,
        events_per_shard=[result.events_processed for result in results],
        peak_rss_by_shard=[result.peak_rss_bytes for result in results],
        load_by_shard=load_by_shard,
        profile=profile,
    )
    if num_shards > 1 and imbalance > LOAD_IMBALANCE_THRESHOLD:
        logger.warning(
            "shard load imbalance: max/median = %.2fx (> %.1fx) across "
            "%d shards; loads = %s",
            imbalance, LOAD_IMBALANCE_THRESHOLD, num_shards, load_by_shard,
        )
        # Structured twin of the warning: a shard-scope overload record
        # the JSONL export, `repro stats`, and the audit report can see
        # instead of a stderr line scrolling past.
        if tel is not None and tel.load is not None:
            tel.load.record_shard_imbalance(
                horizon, load_by_shard, imbalance, LOAD_IMBALANCE_THRESHOLD
            )
    return shard_report
