"""Named, independently seeded random streams.

Simulation components (workload generator, overlay id assignment, churn
injector, ...) each draw from their own stream derived from a single
root seed.  This keeps streams statistically decoupled — adding draws in
one component does not perturb another — while keeping the whole
experiment reproducible from one integer.
"""

from __future__ import annotations

import hashlib
import random


class RandomStreams:
    """A factory of named ``random.Random`` substreams.

    The substream for a given ``(root_seed, name)`` pair is always the
    same, regardless of creation order.

    Example:
        >>> streams = RandomStreams(42)
        >>> a = streams.stream("workload")
        >>> b = streams.stream("overlay")
        >>> a is streams.stream("workload")
        True
    """

    def __init__(self, root_seed: int = 0) -> None:
        self._root_seed = root_seed
        self._streams: dict[str, random.Random] = {}

    @property
    def root_seed(self) -> int:
        """The root seed all substreams derive from."""
        return self._root_seed

    def stream(self, name: str) -> random.Random:
        """Return the substream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(self._derive_seed(name))
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """Return a child factory whose root seed derives from ``name``.

        Useful for running many independent trials: each trial forks its
        own namespace so its streams never collide with another trial's.
        """
        return RandomStreams(self._derive_seed(f"fork:{name}"))

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self._root_seed}/{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")
