"""Vectorized rendezvous matching (numpy).

:class:`VectorizedGridMatcher` keeps the anchor-attribute bucket grid
of :class:`~repro.matching.index.GridIndexMatcher` for candidate
pruning, but hoists the stored constraint bounds into two flat
``(rows, attributes)`` int64 matrices — the same
array-of-struct-to-struct-of-arrays move the sharded kernel applies to
overlay state — and verifies a whole candidate set with two vectorized
comparisons instead of one Python ``matches`` call per candidate.  An
unconstrained attribute is stored as the full domain ``[0, size - 1]``
(its ``effective_constraint``), so the inclusive interval test is the
whole matching semantics.

Candidate generation, candidate sets and the sorted-by-subscription-id
result order are inherited unchanged, so this engine is behaviorally
identical to the grid engine; the parity suite pins it against both
the grid engine and the brute-force oracle.

numpy is optional everywhere in this repository: the module imports
with ``numpy = None`` when it is absent, and
:func:`make_vector_matcher` silently falls back to the scalar grid
engine so ``matcher="vector"`` configurations stay runnable.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised implicitly by the import
    import numpy
except ImportError:  # pragma: no cover - container ships numpy
    numpy = None  # type: ignore[assignment]

from repro.core.events import Event, EventSpace
from repro.core.subscriptions import Subscription
from repro.errors import DataModelError
from repro.matching.base import Matcher
from repro.matching.index import GridIndexMatcher

HAVE_NUMPY = numpy is not None

#: Initial row capacity of the bound matrices (doubles on demand).
_INITIAL_ROWS = 64


class VectorizedGridMatcher(GridIndexMatcher):
    """Grid-pruned, numpy-verified matcher (requires numpy)."""

    def __init__(self, space: EventSpace, buckets_per_attribute: int = 256) -> None:
        if numpy is None:
            raise DataModelError(
                "VectorizedGridMatcher requires numpy; use "
                "make_vector_matcher() for the graceful fallback"
            )
        super().__init__(space, buckets_per_attribute)
        # Matrices are allocated on first add: every rendezvous node
        # owns a matcher, but at scale most nodes never store a
        # subscription, and 10^5 eager numpy allocations dominate ring
        # construction.
        self._dims = len(space.attributes)
        self._lows = None
        self._highs = None
        self._row_of: dict[int, int] = {}
        self._free: list[int] = []

    def add(self, subscription: Subscription) -> None:
        sid = subscription.subscription_id
        if sid in self._subscriptions:
            return
        super().add(subscription)
        if self._lows is None:
            self._lows = numpy.zeros((_INITIAL_ROWS, self._dims), dtype=numpy.int64)
            self._highs = numpy.zeros((_INITIAL_ROWS, self._dims), dtype=numpy.int64)
            self._free = list(range(_INITIAL_ROWS - 1, -1, -1))
        if not self._free:
            rows, dims = self._lows.shape
            grown_lows = numpy.zeros((rows * 2, dims), dtype=numpy.int64)
            grown_highs = numpy.zeros((rows * 2, dims), dtype=numpy.int64)
            grown_lows[:rows] = self._lows
            grown_highs[:rows] = self._highs
            self._lows = grown_lows
            self._highs = grown_highs
            self._free = list(range(rows * 2 - 1, rows - 1, -1))
        row = self._free.pop()
        self._row_of[sid] = row
        for attribute in range(self._dims):
            constraint = subscription.effective_constraint(attribute)
            self._lows[row, attribute] = constraint.low
            self._highs[row, attribute] = constraint.high

    def remove(self, subscription_id: int) -> bool:
        removed = super().remove(subscription_id)
        if removed:
            self._free.append(self._row_of.pop(subscription_id))
        return removed

    def match(self, event: Event) -> list[Subscription]:
        candidates: set[int] = set(self._catch_all)
        grid = self._grid
        widths = self._widths
        for attribute, value in enumerate(event.values):
            buckets = grid[attribute]
            if not buckets:
                continue
            members = buckets.get(value // widths[attribute])
            if members:
                candidates.update(members)
        if not candidates:
            return []
        sids = sorted(candidates)
        rows = [self._row_of[sid] for sid in sids]
        values = numpy.asarray(event.values, dtype=numpy.int64)
        lows = self._lows[rows]
        highs = self._highs[rows]
        hits = ((lows <= values) & (values <= highs)).all(axis=1)
        subscriptions = self._subscriptions
        matched = [
            subscriptions[sid]
            for sid, hit in zip(sids, hits)
            if hit
        ]
        work = self.work
        if work is not None:
            work.candidates += len(sids)
            work.verified += len(sids)
            work.matched += len(matched)
        return matched


def make_vector_matcher(
    space: EventSpace, buckets_per_attribute: int = 256
) -> Matcher:
    """The vectorized engine, or the scalar grid engine without numpy."""
    if numpy is None:
        return GridIndexMatcher(space, buckets_per_attribute)
    return VectorizedGridMatcher(space, buckets_per_attribute)
