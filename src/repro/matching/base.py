"""Common interface of the matching engines."""

from __future__ import annotations

import abc

from repro.core.events import Event
from repro.core.subscriptions import Subscription


class Matcher(abc.ABC):
    """A mutable collection of subscriptions with event matching."""

    #: Optional work-attribution handle (a
    #: :class:`~repro.telemetry.load.MatchWork`): when attached, every
    #: ``match()`` adds its candidate-set size, exact-verification
    #: count and match count.  Class-level None keeps the disabled
    #: path at one identity check per match.
    work = None

    @abc.abstractmethod
    def add(self, subscription: Subscription) -> None:
        """Insert a subscription (no-op if the id is already present)."""

    @abc.abstractmethod
    def remove(self, subscription_id: int) -> bool:
        """Remove by id; returns True if it was present."""

    @abc.abstractmethod
    def match(self, event: Event) -> list[Subscription]:
        """All stored subscriptions the event satisfies."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of stored subscriptions."""

    @abc.abstractmethod
    def __contains__(self, subscription_id: int) -> bool:
        """Membership test by subscription id."""

    def matches_any(self, event: Event) -> bool:
        """True if at least one stored subscription matches the event."""
        return bool(self.match(event))
