"""Subscription covering index: collapse covered predicates at rendezvous.

The paper's selective-attribute mapping concentrates subscriptions on a
few rendezvous nodes; under Zipf interest most of those predicates are
redundant — they are *covered* by a broader subscription already stored
at the same node (σ₁ covers σ₂ iff every event matching σ₂ also matches
σ₁, see :meth:`repro.core.subscriptions.Subscription.covers`).  The
:class:`CoveringIndex` maintains the covering partial order as a forest:

- **roots** are the least-covered summaries — the only subscriptions the
  node's matching engine sees;
- every other subscription hangs as a descendant **leaf** under some
  coverer and costs the matcher nothing.

Matching exploits that the match relation is upward-closed through the
covering order: if an event fails a subscription it fails everything
that subscription covers.  So a publication is matched against the
roots-only engine first, and only subtrees under *hit* roots are fanned
into — a pruned DFS that tests each visited descendant's predicate and
prunes its subtree on a miss.  The result is exactly the set the
uncollapsed store would have matched (pinned by the hypothesis parity
suite in ``tests/matching/test_covering.py``).

Removal keeps the forest correct when a coverer dies before the
subscriptions it covers:

- removing a **leaf** splices its children up to its parent (the
  grandparent covers them transitively);
- removing a **root** promotes its direct children back to roots — the
  caller re-installs them into the matching engine (the
  ``promotions`` counter tracks this re-expansion).

All orders are deterministic (insertion order scans, LIFO DFS), so a
seeded run produces an identical forest and match stream every time.
"""

from __future__ import annotations

from repro.core.events import Event
from repro.core.subscriptions import Subscription


class CoveringIndex:
    """Covering forest over one rendezvous store's subscriptions.

    Counters (cumulative over the index's lifetime):

    Attributes:
        collapsed_total: Subscriptions installed under (or demoted
            beneath) a coverer instead of entering the matching engine.
        promotions_total: Covered subscriptions promoted back to roots
            because their covering root was removed.
    """

    __slots__ = (
        "_subs",
        "_roots",
        "_parent",
        "_children",
        "collapsed_total",
        "promotions_total",
    )

    def __init__(self) -> None:
        self._subs: dict[int, Subscription] = {}
        # Insertion-ordered root set; values are the subscriptions so
        # the coverer scan needs no second lookup.
        self._roots: dict[int, Subscription] = {}
        self._parent: dict[int, int] = {}
        self._children: dict[int, list[int]] = {}
        self.collapsed_total = 0
        self.promotions_total = 0

    def __len__(self) -> int:
        return len(self._subs)

    def __contains__(self, subscription_id: int) -> bool:
        return subscription_id in self._subs

    @property
    def root_count(self) -> int:
        """Number of current roots (= matcher-resident subscriptions)."""
        return len(self._roots)

    @property
    def collapsed_count(self) -> int:
        """Number of currently collapsed (non-root) subscriptions."""
        return len(self._parent)

    def is_root(self, subscription_id: int) -> bool:
        """True if the subscription currently sits in the root set."""
        return subscription_id in self._roots

    def roots(self) -> list[Subscription]:
        """Current roots in insertion order."""
        return list(self._roots.values())

    def add(self, subscription: Subscription) -> tuple[bool, list[int]]:
        """Insert a subscription into the forest.

        Returns ``(became_root, demoted_ids)``: when ``became_root`` is
        True the caller must add the subscription to its matching
        engine and remove every id in ``demoted_ids`` from it (existing
        roots now covered by — and re-parented under — the newcomer).
        When False the subscription was collapsed under a coverer and
        the engine is untouched.
        """
        sid = subscription.subscription_id
        if sid in self._subs:
            raise ValueError(f"subscription {sid} already indexed")
        self._subs[sid] = subscription
        # First covering root wins (deterministic insertion-order scan),
        # then descend greedily to the deepest coverer on that branch so
        # chains like [0,9] ⊒ [2,7] ⊒ [3,5] nest instead of fanning out.
        parent = -1
        for root_id, root_sub in self._roots.items():
            if root_sub.covers(subscription):
                parent = root_id
                break
        if parent >= 0:
            subs = self._subs
            children = self._children
            while True:
                deeper = -1
                for child_id in children.get(parent, ()):
                    if subs[child_id].covers(subscription):
                        deeper = child_id
                        break
                if deeper < 0:
                    break
                parent = deeper
            self._parent[sid] = parent
            self._children.setdefault(parent, []).append(sid)
            self.collapsed_total += 1
            return False, []
        # New root: any existing roots it covers collapse beneath it
        # (their own subtrees ride along untouched).
        demoted = [
            root_id
            for root_id, root_sub in self._roots.items()
            if subscription.covers(root_sub)
        ]
        if demoted:
            kids = self._children.setdefault(sid, [])
            for root_id in demoted:
                del self._roots[root_id]
                self._parent[root_id] = sid
                kids.append(root_id)
            self.collapsed_total += len(demoted)
        self._roots[sid] = subscription
        return True, demoted

    def remove(self, subscription_id: int) -> tuple[bool, list[Subscription]]:
        """Drop a subscription, repairing the forest around it.

        Returns ``(was_root, promoted)``: when ``was_root`` is True the
        caller must remove the id from its matching engine and add every
        subscription in ``promoted`` (the direct children, now roots).
        A removed leaf splices its children up to its parent and leaves
        the engine untouched.
        """
        self._subs.pop(subscription_id)
        kids = self._children.pop(subscription_id, None)
        if subscription_id in self._roots:
            del self._roots[subscription_id]
            promoted: list[Subscription] = []
            if kids:
                subs = self._subs
                parent = self._parent
                for child_id in kids:
                    del parent[child_id]
                    child = subs[child_id]
                    self._roots[child_id] = child
                    promoted.append(child)
                self.promotions_total += len(kids)
            return True, promoted
        parent_id = self._parent.pop(subscription_id)
        siblings = self._children[parent_id]
        siblings.remove(subscription_id)
        if kids:
            parent = self._parent
            for child_id in kids:
                parent[child_id] = parent_id
            siblings.extend(kids)
        if not siblings:
            del self._children[parent_id]
        return False, []

    def expand(
        self, matched_roots: list[Subscription], event: Event
    ) -> tuple[list[int], int, int]:
        """Fan a roots-only match result into the covered subtrees.

        Pruned DFS: a visited descendant whose predicate fails the event
        prunes its whole subtree (match is upward-closed through the
        covering order, so nothing below it can match).  Returns
        ``(matched_ids, tested, hit)`` — all matching subscription ids
        (roots included, unsorted), how many descendant predicates were
        tested, and how many of those hit (the caller folds both into
        its :class:`~repro.telemetry.load.MatchWork` accounting).
        """
        children = self._children
        subs = self._subs
        matched: list[int] = []
        tested = 0
        hit = 0
        stack: list[int] = []
        for root in matched_roots:
            root_id = root.subscription_id
            matched.append(root_id)
            kids = children.get(root_id)
            if kids:
                stack.extend(kids)
        while stack:
            sid = stack.pop()
            tested += 1
            if subs[sid].matches(event):
                hit += 1
                matched.append(sid)
                kids = children.get(sid)
                if kids:
                    stack.extend(kids)
        return matched, tested, hit
