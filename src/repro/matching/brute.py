"""Reference matching engine: test every stored subscription."""

from __future__ import annotations

from repro.core.events import Event
from repro.core.subscriptions import Subscription
from repro.matching.base import Matcher


class BruteForceMatcher(Matcher):
    """O(stored x d) matching; the oracle the index is tested against."""

    def __init__(self) -> None:
        self._subscriptions: dict[int, Subscription] = {}

    def add(self, subscription: Subscription) -> None:
        self._subscriptions.setdefault(subscription.subscription_id, subscription)

    def remove(self, subscription_id: int) -> bool:
        return self._subscriptions.pop(subscription_id, None) is not None

    def match(self, event: Event) -> list[Subscription]:
        matched = [s for s in self._subscriptions.values() if s.matches(event)]
        work = self.work
        if work is not None:
            # Every stored subscription is both candidate and verify.
            work.candidates += len(self._subscriptions)
            work.verified += len(self._subscriptions)
            work.matched += len(matched)
        return matched

    def __len__(self) -> int:
        return len(self._subscriptions)

    def __contains__(self, subscription_id: int) -> bool:
        return subscription_id in self._subscriptions

    def subscriptions(self) -> list[Subscription]:
        """All stored subscriptions (insertion order)."""
        return list(self._subscriptions.values())
