"""Subscription-matching engines.

Rendezvous nodes match each incoming event against their stored
subscriptions (Section 3.2).  Two interchangeable engines are provided:

- :class:`~repro.matching.brute.BruteForceMatcher` -- the obvious
  reference implementation (test oracle);
- :class:`~repro.matching.index.GridIndexMatcher` -- a per-attribute
  bucket-grid index in the spirit of the fast matching literature the
  paper cites ([6], Fabret et al., SIGMOD 2001), used where stores are
  large (rendezvous nodes under skew, the workload generator's
  matching-probability control);
- :class:`~repro.matching.radix.RadixBitmapMatcher` -- a radix-block
  index with per-attribute occupied-level bitmaps, exact on the anchor
  attribute; the better fit when stored constraints are mostly
  equalities (one hash probe per attribute, no anchor false
  candidates);
- :class:`~repro.matching.vector.VectorizedGridMatcher` -- the grid
  engine with numpy-vectorized candidate verification over flat bound
  matrices (optional; falls back to the scalar grid engine via
  :func:`~repro.matching.vector.make_vector_matcher` without numpy).

All expose add/remove/match over :class:`repro.core.Subscription`;
brute force remains the oracle the others are tested against.

Orthogonal to the engines, :class:`~repro.matching.covering.
CoveringIndex` maintains the covering partial order over a store's
subscriptions so the engine only ever sees the least-covered roots;
covered subscriptions are reached by a pruned DFS on a root hit.
"""

from repro.matching.base import Matcher
from repro.matching.brute import BruteForceMatcher
from repro.matching.covering import CoveringIndex
from repro.matching.index import GridIndexMatcher
from repro.matching.radix import RadixBitmapMatcher
from repro.matching.vector import (
    HAVE_NUMPY,
    VectorizedGridMatcher,
    make_vector_matcher,
)

__all__ = [
    "HAVE_NUMPY",
    "Matcher",
    "BruteForceMatcher",
    "CoveringIndex",
    "GridIndexMatcher",
    "RadixBitmapMatcher",
    "VectorizedGridMatcher",
    "make_vector_matcher",
]
