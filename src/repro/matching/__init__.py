"""Subscription-matching engines.

Rendezvous nodes match each incoming event against their stored
subscriptions (Section 3.2).  Two interchangeable engines are provided:

- :class:`~repro.matching.brute.BruteForceMatcher` -- the obvious
  reference implementation (test oracle);
- :class:`~repro.matching.index.GridIndexMatcher` -- a per-attribute
  bucket-grid index in the spirit of the fast matching literature the
  paper cites ([6], Fabret et al., SIGMOD 2001), used where stores are
  large (rendezvous nodes under skew, the workload generator's
  matching-probability control).

Both expose add/remove/match over :class:`repro.core.Subscription`.
"""

from repro.matching.base import Matcher
from repro.matching.brute import BruteForceMatcher
from repro.matching.index import GridIndexMatcher

__all__ = ["Matcher", "BruteForceMatcher", "GridIndexMatcher"]
