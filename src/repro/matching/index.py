"""Bucket-grid matching index.

Strategy: pick one *anchor* attribute per subscription (its most
selective constraint), divide that attribute's domain into fixed-width
buckets, and register the subscription in every bucket its anchor range
overlaps.  Matching an event probes one bucket per attribute and
verifies candidates exactly.  Partial subscriptions with no constraints
at all live in a catch-all list.

With the paper's workload (ranges ≤ 3% of the domain) each subscription
lands in a handful of buckets and each probe examines a small candidate
set, making the matching-probability control of the workload generator
(which must test events against up to 25 000 live subscriptions)
affordable.
"""

from __future__ import annotations

from repro.core.events import Event, EventSpace
from repro.core.subscriptions import Subscription
from repro.errors import DataModelError
from repro.matching.base import Matcher


class GridIndexMatcher(Matcher):
    """Anchor-attribute bucket grid over one event space.

    Args:
        space: The event space all indexed subscriptions must share.
        buckets_per_attribute: Grid resolution; more buckets = smaller
            candidate sets but more registration work per subscription.
    """

    def __init__(self, space: EventSpace, buckets_per_attribute: int = 256) -> None:
        if buckets_per_attribute < 1:
            raise DataModelError("need at least one bucket per attribute")
        self._space = space
        self._bucket_count = buckets_per_attribute
        self._widths = [
            max(1, -(-attribute.size // buckets_per_attribute))  # ceil division
            for attribute in space.attributes
        ]
        # _grid[attribute][bucket] -> {subscription_id}
        self._grid: list[dict[int, set[int]]] = [{} for _ in space.attributes]
        self._catch_all: set[int] = set()
        self._subscriptions: dict[int, Subscription] = {}
        self._anchor: dict[int, int] = {}

    def _bucket_of(self, attribute: int, value: int) -> int:
        return value // self._widths[attribute]

    def add(self, subscription: Subscription) -> None:
        sid = subscription.subscription_id
        if sid in self._subscriptions:
            return
        if subscription.space != self._space:
            raise DataModelError("subscription space differs from index space")
        self._subscriptions[sid] = subscription
        if not subscription.constraints:
            self._catch_all.add(sid)
            return
        anchor = subscription.most_selective_attribute()
        self._anchor[sid] = anchor
        constraint = subscription.constraint_on(anchor)
        assert constraint is not None
        buckets = self._grid[anchor]
        first = self._bucket_of(anchor, constraint.low)
        last = self._bucket_of(anchor, constraint.high)
        for bucket in range(first, last + 1):
            buckets.setdefault(bucket, set()).add(sid)

    def remove(self, subscription_id: int) -> bool:
        subscription = self._subscriptions.pop(subscription_id, None)
        if subscription is None:
            return False
        if subscription_id in self._catch_all:
            self._catch_all.discard(subscription_id)
            return True
        anchor = self._anchor.pop(subscription_id)
        constraint = subscription.constraint_on(anchor)
        assert constraint is not None
        buckets = self._grid[anchor]
        first = self._bucket_of(anchor, constraint.low)
        last = self._bucket_of(anchor, constraint.high)
        for bucket in range(first, last + 1):
            members = buckets.get(bucket)
            if members is not None:
                members.discard(subscription_id)
                if not members:
                    del buckets[bucket]
        return True

    def match(self, event: Event) -> list[Subscription]:
        candidates: set[int] = set(self._catch_all)
        grid = self._grid
        widths = self._widths
        for attribute, value in enumerate(event.values):
            buckets = grid[attribute]
            if not buckets:
                # No subscription is anchored on this attribute; skip
                # the bucket arithmetic and the probe entirely.
                continue
            members = buckets.get(value // widths[attribute])
            if members:
                candidates.update(members)
        subscriptions = self._subscriptions
        matched = [
            subscription
            for sid in candidates
            if (subscription := subscriptions[sid]).matches(event)
        ]
        matched.sort(key=lambda s: s.subscription_id)
        work = self.work
        if work is not None:
            work.candidates += len(candidates)
            work.verified += len(candidates)
            work.matched += len(matched)
        return matched

    def __len__(self) -> int:
        return len(self._subscriptions)

    def __contains__(self, subscription_id: int) -> bool:
        return subscription_id in self._subscriptions
