"""Radix/bitmap matching index for equality-dense workloads.

Strategy: like the bucket grid, each subscription is registered under
its *anchor* attribute (most selective constraint) — but instead of
fixed-width buckets, the anchor range is decomposed into its canonical
*radix blocks*: maximal binary-aligned value prefixes, the same
splitting that turns an IP range into CIDR prefixes.  A range of width
``r`` over a ``b``-bit domain becomes at most ``2b`` blocks, each
stored in a per-level hash table; an equality constraint is a single
level-0 entry.

Matching probes, for each attribute, the event value's prefix at every
*occupied* level — a per-attribute bitmask records which levels hold
any block, so an equality-only store probes exactly one hash slot per
attribute.  A probe hit is exact on the anchor attribute (the block is
entirely inside the range), so unlike the grid there are no anchor
false candidates; the survivors are verified against their remaining
constraints only because a subscription constrains more than its
anchor.

Compared with :class:`~repro.matching.index.GridIndexMatcher` this
trades the grid's fixed per-probe cost for one that scales with the
diversity of range *widths* actually stored — on workloads dominated
by equality constraints (level bitmap = {0}) it degenerates to a
single exact dictionary lookup per attribute.
"""

from __future__ import annotations

from repro.core.events import Event, EventSpace
from repro.core.subscriptions import Subscription
from repro.errors import DataModelError
from repro.matching.base import Matcher


def radix_blocks(low: int, high: int) -> list[tuple[int, int]]:
    """Canonical ``(prefix, level)`` decomposition of ``[low, high]``.

    Each block covers the values ``[prefix << level, (prefix + 1) <<
    level)``; blocks are maximal (doubling any would leave the range),
    disjoint, and cover the range exactly.  An inclusive range over a
    ``b``-bit domain yields at most ``2b`` blocks.
    """
    blocks: list[tuple[int, int]] = []
    position, end = low, high + 1  # half-open
    while position < end:
        if position:
            level = (position & -position).bit_length() - 1  # alignment
        else:
            level = (end - 1).bit_length()  # 0 is aligned at any level
        while (1 << level) > end - position:
            level -= 1
        blocks.append((position >> level, level))
        position += 1 << level
    return blocks


class RadixBitmapMatcher(Matcher):
    """Per-attribute radix-block index with an occupied-level bitmap.

    Args:
        space: The event space all indexed subscriptions must share.
    """

    def __init__(self, space: EventSpace) -> None:
        self._space = space
        bits = [
            max(1, (attribute.size - 1).bit_length())
            for attribute in space.attributes
        ]
        # _tables[attribute][level][prefix] -> {subscription_id}; one
        # table per level so a probe is a plain int-keyed dict lookup.
        self._tables: list[list[dict[int, set[int]]]] = [
            [{} for _ in range(b + 1)] for b in bits
        ]
        # Bit ``l`` set <=> some block is stored at level ``l``; the
        # match loop iterates set bits only.  _level_counts backs the
        # bitmap so removals can clear bits exactly.
        self._level_bits: list[int] = [0] * space.dimensions
        self._level_counts: list[dict[int, int]] = [
            {} for _ in range(space.dimensions)
        ]
        self._catch_all: set[int] = set()
        self._subscriptions: dict[int, Subscription] = {}
        self._anchor: dict[int, int] = {}

    def _anchor_blocks(self, subscription: Subscription) -> tuple[int, list]:
        anchor = subscription.most_selective_attribute()
        constraint = subscription.constraint_on(anchor)
        assert constraint is not None
        return anchor, radix_blocks(constraint.low, constraint.high)

    def add(self, subscription: Subscription) -> None:
        sid = subscription.subscription_id
        if sid in self._subscriptions:
            return
        if subscription.space != self._space:
            raise DataModelError("subscription space differs from index space")
        self._subscriptions[sid] = subscription
        if not subscription.constraints:
            self._catch_all.add(sid)
            return
        anchor, blocks = self._anchor_blocks(subscription)
        self._anchor[sid] = anchor
        tables = self._tables[anchor]
        counts = self._level_counts[anchor]
        for prefix, level in blocks:
            tables[level].setdefault(prefix, set()).add(sid)
            counts[level] = counts.get(level, 0) + 1
            self._level_bits[anchor] |= 1 << level

    def remove(self, subscription_id: int) -> bool:
        subscription = self._subscriptions.pop(subscription_id, None)
        if subscription is None:
            return False
        if subscription_id in self._catch_all:
            self._catch_all.discard(subscription_id)
            return True
        anchor = self._anchor.pop(subscription_id)
        tables = self._tables[anchor]
        counts = self._level_counts[anchor]
        _, blocks = self._anchor_blocks(subscription)
        for prefix, level in blocks:
            table = tables[level]
            members = table.get(prefix)
            if members is not None:
                members.discard(subscription_id)
                if not members:
                    del table[prefix]
            remaining = counts[level] - 1
            if remaining:
                counts[level] = remaining
            else:
                del counts[level]
                self._level_bits[anchor] &= ~(1 << level)
        return True

    def match(self, event: Event) -> list[Subscription]:
        candidates: set[int] = set(self._catch_all)
        tables = self._tables
        level_bits = self._level_bits
        for attribute, value in enumerate(event.values):
            bits = level_bits[attribute]
            if not bits:
                continue  # nothing anchored on this attribute
            attr_tables = tables[attribute]
            while bits:
                level = (bits & -bits).bit_length() - 1
                bits &= bits - 1
                members = attr_tables[level].get(value >> level)
                if members:
                    candidates.update(members)
        subscriptions = self._subscriptions
        matched = [
            subscription
            for sid in candidates
            if (subscription := subscriptions[sid]).matches(event)
        ]
        matched.sort(key=lambda s: s.subscription_id)
        work = self.work
        if work is not None:
            work.candidates += len(candidates)
            work.verified += len(candidates)
            work.matched += len(matched)
        return matched

    def __len__(self) -> int:
        return len(self._subscriptions)

    def __contains__(self, subscription_id: int) -> bool:
        return subscription_id in self._subscriptions
