"""Load-skew analytics over per-entity load distributions.

The paper's selective-attribute mapping (Section 3) deliberately
concentrates subscriptions on few rendezvous nodes; under Zipf
workloads the resulting load is heavily skewed.  This module turns the
raw per-node / per-key load counts of
:class:`~repro.telemetry.load.LoadMeter` into the numbers a
load-balancing decision needs:

- :func:`top_k` — the hottest entities and their absolute loads;
- :func:`gini` — the Gini coefficient of the distribution (0 =
  perfectly even, → 1 = one entity carries everything);
- :func:`p99_mean_ratio` — how far the tail sits above the average;
- :class:`OverloadDetector` — a windowed detector that flags nodes
  whose load *since the previous sample* exceeds a configurable
  multiple of the ring median, emitting one
  :class:`OverloadEvent` per (sample, hot node).

All functions are deterministic: ties break toward the smaller entity
id, so repeated runs produce identical top-k lists and event streams.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
from typing import Iterable, Mapping

from repro.metrics.stats import summarize


def gini(values: Iterable[float]) -> float:
    """Gini coefficient of a non-negative sample.

    0.0 for an empty sample, a single value, or an all-equal (or
    all-zero) distribution; approaches ``(n - 1) / n`` when one entity
    carries the whole load.  Uses the sorted-rank formula
    ``G = (2 Σ i·xᵢ) / (n Σ xᵢ) - (n + 1) / n`` with 1-based ranks
    over the ascending sort.
    """
    data = sorted(float(v) for v in values)
    n = len(data)
    if n < 2:
        return 0.0
    total = sum(data)
    if total <= 0:
        return 0.0
    weighted = sum(rank * value for rank, value in enumerate(data, start=1))
    return (2.0 * weighted) / (n * total) - (n + 1) / n


def top_k(loads: Mapping[int, float], k: int) -> list[tuple[int, float]]:
    """The ``k`` hottest entities as ``(id, load)``, hottest first.

    Deterministic under ties: equal loads order by ascending id.
    """
    if k <= 0:
        return []
    # heapq.nsmallest(k, ...) is defined to equal sorted(...)[:k], so
    # this is the same deterministic ranking at O(n log k) instead of a
    # full sort — LoadMeter.sample calls this once per scope per sample.
    return heapq.nsmallest(k, loads.items(), key=lambda item: (-item[1], item[0]))


def p99_mean_ratio(values: Iterable[float]) -> float:
    """p99 / mean of the sample (0.0 when the mean is zero or no data).

    A ratio near 1 means the tail sits at the average — an even load;
    large ratios mean a few entities run far hotter than typical.
    """
    summary = summarize(values)
    if summary.count == 0 or summary.mean == 0:
        return 0.0
    return summary.p99 / summary.mean


@dataclasses.dataclass(frozen=True)
class SkewSummary:
    """One distribution's skew statistics (see :func:`skew_summary`)."""

    count: int
    total: float
    gini: float
    p99_mean_ratio: float
    top: tuple[tuple[int, float], ...]

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "gini": round(self.gini, 6),
            "p99_mean_ratio": round(self.p99_mean_ratio, 6),
            "top": [[entity, load] for entity, load in self.top],
        }


def skew_summary(loads: Mapping[int, float], k: int = 10) -> SkewSummary:
    """Summarize one per-entity load distribution.

    Hot path: :meth:`~repro.telemetry.load.LoadMeter.sample` runs this
    over every node on every sim-clock sample, so the Gini, percentile
    and total all come off a *single* ascending sort (plus the bounded
    top-k heap) instead of delegating to :func:`gini` /
    :func:`p99_mean_ratio`, which would each re-sort.  The formulas are
    the same ones those helpers use, and ``tests/metrics/test_skew.py``
    pins the outputs against them.
    """
    values = sorted(map(float, loads.values()))
    n = len(values)
    if n == 0:
        return SkewSummary(
            count=0, total=0.0, gini=0.0, p99_mean_ratio=0.0,
            top=tuple(top_k(loads, k)),
        )
    total = 0.0
    weighted = 0.0
    rank = 0
    for value in values:
        rank += 1
        total += value
        weighted += rank * value
    g = 0.0
    if n >= 2 and total > 0:
        g = (2.0 * weighted) / (n * total) - (n + 1) / n
    # summarize()'s clamped mean and nearest-rank p99, inlined.
    mean = min(values[-1], max(values[0], total / n))
    ratio = 0.0
    if mean != 0:
        p99_rank = max(0, min(n - 1, math.ceil(0.99 * n) - 1))
        ratio = values[p99_rank] / mean
    return SkewSummary(
        count=n,
        total=total,
        gini=g,
        p99_mean_ratio=ratio,
        top=tuple(top_k(loads, k)),
    )


@dataclasses.dataclass(frozen=True)
class OverloadEvent:
    """One node exceeding the overload threshold in one sample window."""

    t: float
    node: int
    window_load: float
    median: float
    ratio: float
    threshold: float

    def as_dict(self) -> dict:
        return {
            "type": "overload",
            "t": self.t,
            "node": self.node,
            "window_load": self.window_load,
            "median": round(self.median, 6),
            "ratio": round(self.ratio, 4),
            "threshold": self.threshold,
        }


class OverloadDetector:
    """Windowed overload detection against the ring median.

    Each call to :meth:`observe` closes one window: the per-node load
    *delta* since the previous observation is compared against the
    median delta across all observed nodes, and nodes strictly above
    ``threshold`` times that median are flagged.  Nodes absent from a
    sample contribute a zero delta (an idle node is part of the ring's
    load distribution, not missing data).

    Edge cases, pinned by ``tests/metrics/test_skew.py``:

    - an empty sample emits nothing (no ring, no median);
    - a single node is its own median (ratio 1), so it can only be
      flagged by a threshold below 1;
    - a zero median (quiet window) falls back to ``min_median``, so a
      lone node doing *any* work in an otherwise idle window is only
      flagged once its load clears ``threshold * min_median``.
    """

    def __init__(self, threshold: float = 4.0, min_median: float = 1.0) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if min_median <= 0:
            raise ValueError(f"min_median must be positive, got {min_median}")
        self.threshold = threshold
        self.min_median = min_median
        self.events: list[OverloadEvent] = []
        self._previous: dict[int, float] = {}

    def observe(self, now: float, loads: Mapping[int, float]) -> list[OverloadEvent]:
        """Close one window over cumulative ``loads``; return new events."""
        if not loads:
            return []
        previous = self._previous
        deltas = {
            node: load - previous.get(node, 0.0) for node, load in loads.items()
        }
        self._previous = dict(loads)
        ordered = sorted(deltas.values())
        n = len(ordered)
        mid = n // 2
        median = (
            ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2.0
        )
        floor = max(median, self.min_median)
        cutoff = self.threshold * floor
        fired = [
            OverloadEvent(
                t=now,
                node=node,
                window_load=delta,
                median=median,
                ratio=delta / floor,
                threshold=self.threshold,
            )
            for node, delta in sorted(deltas.items())
            if delta > cutoff
        ]
        self.events.extend(fired)
        return fired
