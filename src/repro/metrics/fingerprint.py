"""Canonical behavior fingerprints over a run's recorded metrics.

The bench harness has pinned simulated outcomes since PR 1 by hashing a
canonicalized view of the metrics recorder; the sharded kernel (PR 7)
needs the *same* digest to state its determinism contract ("``--shards
1`` is bit-for-bit the serial kernel", "K > 1 is identical across
repeat runs"), so the canonicalization lives here and both consumers
import it.  The canonical form is frozen — changing it silently
invalidates every committed baseline fingerprint.

Everything in the digest is invariant under intra-timestamp event
reordering (multisets, not sequences) but pins delivery counts, hop
counts and notification delays bit-for-bit.  That order-invariance is
what makes the digest shard-stable: the coordinator merges per-shard
recorder partials in (shard id, request id) order, and the canonical
form sorts them anyway.
"""

from __future__ import annotations

import hashlib
import json

from repro.metrics.recorder import MetricsRecorder


def canonical_metrics(recorder: MetricsRecorder) -> dict:
    """The canonicalized simulated-outcome view of one recorder.

    Keys and value shapes are part of the frozen fingerprint contract
    (see module docstring); floats are carried as ``repr`` strings so
    the digest is exact, not round-trip-approximate.
    """
    stats = recorder.messages
    sends_by_kind = {
        kind.name: stats.total_sends(kind)
        for kind in sorted(
            {trace.kind for trace in stats.traces.values()}, key=lambda k: k.name
        )
    }
    traces = sorted(
        (
            trace.kind.name,
            trace.one_hop_messages,
            trace.max_path_hops,
            sorted((node, repr(when)) for node, when in trace.deliveries),
        )
        for trace in stats.traces.values()
    )
    delays = sorted(repr(d) for d in recorder._notification_delays)
    return {
        "sends_by_kind": sends_by_kind,
        "traces": traces,
        "delays": delays,
        "matched_notifications": recorder.matched_notifications,
        "notification_batches": recorder.notification_batches,
    }


def behavior_digest(recorder: MetricsRecorder) -> str:
    """SHA-256 over :func:`canonical_metrics` in canonical JSON form."""
    canonical = json.dumps(
        canonical_metrics(recorder), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def behavior_fingerprint(recorder: MetricsRecorder) -> dict:
    """The bench-harness fingerprint record for one run.

    The digest plus the human-comparable summary fields the bench JSON
    has always carried next to it.
    """
    stats = recorder.messages
    canonical = canonical_metrics(recorder)
    digest = hashlib.sha256(
        json.dumps(canonical, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()
    total_deliveries = sum(t.delivery_count for t in stats.traces.values())
    return {
        "sha256": digest,
        "total_one_hop_sends": stats.total_sends(),
        "total_deliveries": total_deliveries,
        "sends_by_kind": canonical["sends_by_kind"],
        "matched_notifications": recorder.matched_notifications,
        "delay_count": len(recorder._notification_delays),
        "delay_sum_repr": repr(sum(sorted(recorder._notification_delays))),
    }
