"""Measurement infrastructure for the simulation study.

The paper's evaluation (Section 5) reports two families of metrics:

a) **one-hop message counts**, broken down by request type
   (subscription / publication / notification) and normalized per
   request — "hops per request" in Figs. 5, 7, 9;
b) **subscriptions stored per node** (max and average) — Figs. 6, 8.

:class:`~repro.metrics.counters.MessageStats` implements (a);
:class:`~repro.metrics.counters.StorageStats` implements (b);
:class:`~repro.metrics.recorder.MetricsRecorder` bundles both plus
delivery-latency (dilation) tracking for the m-cast analysis.
"""

from repro.metrics.counters import MessageStats, RequestTrace, StorageStats
from repro.metrics.recorder import MetricsRecorder
from repro.metrics.stats import Summary, summarize

__all__ = [
    "MessageStats",
    "RequestTrace",
    "StorageStats",
    "MetricsRecorder",
    "Summary",
    "summarize",
]
