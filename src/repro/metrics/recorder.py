"""The per-run metrics bundle.

One :class:`MetricsRecorder` lives for the duration of a simulation run.
The network substrate feeds it one-hop sends and deliveries; the
experiment runner feeds it storage snapshots; the figure harnesses read
aggregated views off it at the end.
"""

from __future__ import annotations

from repro.metrics.counters import MessageStats, StorageStats
from repro.metrics.stats import Summary, summarize
from repro.overlay.api import MessageKind


class MetricsRecorder:
    """Bundles message accounting and storage sampling for one run."""

    def __init__(self) -> None:
        self.messages = MessageStats()
        self.storage = StorageStats()
        self._notified_events: int = 0
        self._matched_notifications: int = 0
        self._notification_delays: list[float] = []

    # -- pub/sub-level counters ----------------------------------------

    def record_notification_batch(self, match_count: int) -> None:
        """Count an application-level notification delivery of a batch.

        ``match_count`` is how many matched events the batch carried;
        buffering/collecting (Section 4.3.2) packs several matches into
        one message, which is exactly what this separates from the
        one-hop message count.
        """
        self._notified_events += 1
        self._matched_notifications += match_count

    @property
    def notification_batches(self) -> int:
        """Number of notification batches delivered to subscribers."""
        return self._notified_events

    @property
    def matched_notifications(self) -> int:
        """Total matched events delivered inside those batches."""
        return self._matched_notifications

    def merge_from(self, other: "MetricsRecorder") -> None:
        """Fold a shard worker's partial recorder into this one.

        The sharded coordinator calls this once per shard, in shard-id
        order.  The behavior fingerprint
        (:mod:`repro.metrics.fingerprint`) is order-invariant, so the
        merge order cannot affect the digest — but keeping it fixed
        keeps the *raw* merged views (delivery lists, delay sequences)
        deterministic too.
        """
        self.messages.merge_from(other.messages)
        self.storage.merge_from(other.storage)
        self._notified_events += other._notified_events
        self._matched_notifications += other._matched_notifications
        self._notification_delays.extend(other._notification_delays)

    def record_notification_delay(self, delay: float) -> None:
        """Record publish-to-delivery latency of one matched event.

        Buffering trades delivery delay for fewer, longer messages
        (Section 4.3.2: "introducing only a delay in the notification
        itself"); this measures that trade-off.
        """
        self._notification_delays.append(delay)

    def notification_delay_summary(self) -> Summary:
        """Summary of publish-to-delivery latencies."""
        return summarize(self._notification_delays)

    # -- aggregated views ----------------------------------------------

    def hops_summary(self, kind: MessageKind) -> Summary:
        """Summary of one-hop messages per request for ``kind``."""
        return summarize(self.messages.hops_per_request(kind))

    def mean_hops(self, kind: MessageKind) -> float:
        """Average one-hop messages per request for ``kind``."""
        return self.messages.mean_hops_per_request(kind)

    def notification_hops_per_publication(self) -> float:
        """Notification + collect one-hop messages per publication.

        Fig. 9(a) reports notification cost as a function of matching
        probability; collecting traffic (neighbor aggregation hops) is
        part of that cost and is included here.
        """
        publications = len(self.messages.requests_of_kind(MessageKind.PUBLICATION))
        if publications == 0:
            return 0.0
        notify_msgs = self.messages.total_sends(MessageKind.NOTIFICATION)
        collect_msgs = self.messages.total_sends(MessageKind.COLLECT)
        return (notify_msgs + collect_msgs) / publications
