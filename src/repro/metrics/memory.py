"""Peak resident-set measurement for the bench harness.

Linux exposes a process's RSS high-water mark as ``VmHWM`` in
``/proc/self/status``, and writing ``"5"`` to ``/proc/self/clear_refs``
resets it — so a bench scenario can be bracketed by
:func:`reset_peak_rss` / :func:`peak_rss_bytes` to report its *own*
peak footprint rather than the process's lifetime peak.  Where either
file is unavailable (non-Linux, restricted ``/proc``) the fallback is
``getrusage`` ``ru_maxrss``, which cannot be reset — the figure is then
a lifetime upper bound, signalled by :func:`reset_peak_rss` returning
False.

``tracemalloc`` is deliberately not used here: it only sees Python
allocations (missing numpy buffers and interpreter overhead) and slows
the measured run down, which would corrupt the throughput numbers the
same bench reports.
"""

from __future__ import annotations

import resource


def reset_peak_rss() -> bool:
    """Reset the process's RSS high-water mark; True if it worked."""
    try:
        with open("/proc/self/clear_refs", "w") as refs:
            refs.write("5")
        return True
    except OSError:
        return False


def peak_rss_bytes() -> int:
    """Peak RSS in bytes since the last successful reset (or ever)."""
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    # ru_maxrss is kilobytes on Linux; lifetime peak, not resettable.
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
