"""Message and storage counters.

"Hops per request" in the paper counts every one-hop transmission that a
logical request (one ``sub()``, one ``pub()``, one notification batch)
causes anywhere in the system, including routing hops through
intermediate overlay nodes.  :class:`MessageStats` attributes each
one-hop send to its originating request via the request id carried by
every :class:`~repro.overlay.api.OverlayMessage`.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict

from repro.overlay.api import MessageKind


@dataclasses.dataclass
class RequestTrace:
    """Per-request accounting record.

    Attributes:
        request_id: The request this trace belongs to.
        kind: Request type (subscription / publication / notification...).
        start_time: Simulated time the request was initiated.
        one_hop_messages: Total one-hop transmissions caused so far.
        deliveries: ``(node_id, time)`` for each application delivery.
        max_path_hops: Largest per-copy hop count observed at delivery
            time — the *delivery dilation* of Section 4.3.1.
    """

    request_id: int
    kind: MessageKind
    start_time: float
    one_hop_messages: int = 0
    deliveries: list[tuple[int, float]] = dataclasses.field(default_factory=list)
    max_path_hops: int = 0

    @property
    def delivery_count(self) -> int:
        """Number of application-level deliveries for this request."""
        return len(self.deliveries)

    @property
    def last_delivery_time(self) -> float | None:
        """Time of the latest delivery, or None if nothing delivered."""
        if not self.deliveries:
            return None
        return max(time for _, time in self.deliveries)


class MessageStats:
    """Aggregates one-hop message counts by kind and by request."""

    def __init__(self) -> None:
        self._sends_by_kind: defaultdict[MessageKind, int] = defaultdict(int)
        self._traces: dict[int, RequestTrace] = {}

    @property
    def traces(self) -> dict[int, RequestTrace]:
        """All per-request traces, keyed by request id."""
        return self._traces

    def begin_request(
        self, kind: MessageKind, request_id: int, time: float
    ) -> RequestTrace:
        """Register the start of a logical request."""
        trace = RequestTrace(request_id=request_id, kind=kind, start_time=time)
        self._traces[request_id] = trace
        return trace

    def record_send(self, kind: MessageKind, request_id: int, time: float) -> None:
        """Account one one-hop transmission to ``request_id``."""
        self._sends_by_kind[kind] += 1
        trace = self._traces.get(request_id)
        if trace is None:
            trace = self.begin_request(kind, request_id, time)
        trace.one_hop_messages += 1

    def record_delivery(
        self, request_id: int, node_id: int, time: float, path_hops: int
    ) -> None:
        """Account an application-level delivery for ``request_id``."""
        trace = self._traces.get(request_id)
        if trace is None:
            return
        trace.deliveries.append((node_id, time))
        trace.max_path_hops = max(trace.max_path_hops, path_hops)

    def merge_from(self, other: "MessageStats") -> None:
        """Fold another partial's accounting into this one.

        The sharded kernel records each shard's sends and deliveries in
        a private recorder; the coordinator merges the partials in shard
        order.  A request's trace may exist in *several* partials (the
        origin shard begins it, every shard that forwards a hop lazily
        begins it on first ``record_send``), so traces merge field-wise:
        hop counts add, deliveries concatenate, the dilation maximum and
        the earliest start time win.
        """
        for kind, count in other._sends_by_kind.items():
            self._sends_by_kind[kind] += count
        traces = self._traces
        for request_id, partial in other._traces.items():
            trace = traces.get(request_id)
            if trace is None:
                traces[request_id] = dataclasses.replace(
                    partial, deliveries=list(partial.deliveries)
                )
                continue
            trace.one_hop_messages += partial.one_hop_messages
            trace.deliveries.extend(partial.deliveries)
            trace.max_path_hops = max(trace.max_path_hops, partial.max_path_hops)
            trace.start_time = min(trace.start_time, partial.start_time)

    def total_sends(self, kind: MessageKind | None = None) -> int:
        """Total one-hop messages of ``kind`` (or of all kinds)."""
        if kind is None:
            return sum(self._sends_by_kind.values())
        return self._sends_by_kind[kind]

    def requests_of_kind(self, kind: MessageKind) -> list[RequestTrace]:
        """All traces for requests of the given kind."""
        return [t for t in self._traces.values() if t.kind == kind]

    def hops_per_request(self, kind: MessageKind) -> list[int]:
        """One-hop message counts, one entry per request of ``kind``."""
        return [t.one_hop_messages for t in self.requests_of_kind(kind)]

    def mean_hops_per_request(self, kind: MessageKind) -> float:
        """Average one-hop messages per request of ``kind`` (0.0 if none)."""
        hops = self.hops_per_request(kind)
        if not hops:
            return 0.0
        return sum(hops) / len(hops)

    def mean_dilation(self, kind: MessageKind) -> float:
        """Average delivery dilation (max per-copy hops) of ``kind``."""
        dilations = [
            t.max_path_hops for t in self.requests_of_kind(kind) if t.deliveries
        ]
        if not dilations:
            return 0.0
        return sum(dilations) / len(dilations)


class StorageStats:
    """Snapshots of subscriptions stored per node (Figs. 6 and 8).

    The harness samples the subscription stores periodically; the
    figures report the maximum (and, per the paper's remark, the
    average follows the same trend) over nodes at the end of a run.
    """

    def __init__(self) -> None:
        self._snapshots: list[tuple[float, dict[int, int]]] = []

    def snapshot(self, time: float, per_node_counts: dict[int, int]) -> None:
        """Record the number of stored subscriptions per node at ``time``."""
        self._snapshots.append((time, dict(per_node_counts)))

    def merge_from(self, other: "StorageStats") -> None:
        """Fold another partial's snapshots into this one.

        Shard workers snapshot their *local* nodes at identical sample
        times; merging unions the per-node maps of same-time snapshots
        (node sets are disjoint across shards) and re-sorts by time.
        """
        by_time: dict[float, dict[int, int]] = {}
        for time, counts in self._snapshots:
            by_time.setdefault(time, {}).update(counts)
        for time, counts in other._snapshots:
            by_time.setdefault(time, {}).update(counts)
        self._snapshots = [(time, by_time[time]) for time in sorted(by_time)]

    @property
    def snapshots(self) -> list[tuple[float, dict[int, int]]]:
        """All recorded ``(time, {node_id: count})`` snapshots."""
        return self._snapshots

    def latest(self) -> dict[int, int]:
        """The most recent per-node counts (empty if never sampled)."""
        if not self._snapshots:
            return {}
        return self._snapshots[-1][1]

    def max_per_node(self) -> int:
        """Maximum subscriptions on any node in the latest snapshot."""
        counts = self.latest()
        return max(counts.values(), default=0)

    def mean_per_node(self) -> float:
        """Average subscriptions per node in the latest snapshot."""
        counts = self.latest()
        if not counts:
            return 0.0
        return sum(counts.values()) / len(counts)

    def peak_max_per_node(self) -> int:
        """Largest per-node count observed across **all** snapshots.

        With subscription expiration the interesting quantity is the
        steady-state occupancy *during* the run, not whatever remains
        at the horizon — the harness samples periodically and the
        figures report this peak (Figs. 6 and 8).
        """
        peak = 0
        for _, counts in self._snapshots:
            peak = max(peak, max(counts.values(), default=0))
        return peak

    def peak_mean_per_node(self) -> float:
        """Largest per-snapshot average across all snapshots."""
        peak = 0.0
        for _, counts in self._snapshots:
            if counts:
                peak = max(peak, sum(counts.values()) / len(counts))
        return peak
