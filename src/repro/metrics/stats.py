"""Small descriptive-statistics helpers for experiment reports."""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable


@dataclasses.dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample.

    Attributes:
        count: Sample size.
        mean: Arithmetic mean (0.0 for an empty sample).
        stdev: Population standard deviation (0.0 for n < 2).
        minimum: Smallest value (0.0 for an empty sample).
        maximum: Largest value (0.0 for an empty sample).
        p50: Median.
        p95: 95th percentile (nearest-rank).
        p99: 99th percentile (nearest-rank).
    """

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float = 0.0


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of a pre-sorted, non-empty sample."""
    rank = max(0, min(len(sorted_values) - 1, math.ceil(fraction * len(sorted_values)) - 1))
    return sorted_values[rank]


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` of ``values``.

    An empty sample yields an all-zero summary rather than raising, so
    report code can render "no data" rows uniformly.
    """
    data = sorted(float(v) for v in values)
    if not data:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    n = len(data)
    # Clamp into [min, max]: float summation can push the mean a few
    # ulps past the extremes (e.g. mean([0.8]*3) > 0.8), and downstream
    # consumers rely on the summary being internally consistent.
    mean = min(data[-1], max(data[0], sum(data) / n))
    variance = sum((v - mean) ** 2 for v in data) / n
    return Summary(
        count=n,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=data[0],
        maximum=data[-1],
        p50=_percentile(data, 0.50),
        p95=_percentile(data, 0.95),
        p99=_percentile(data, 0.99),
    )
