# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test verify bench bench-quick bench-scale bench-trajectory bench-figs bench-paper examples report clean

install:
	$(PYTHON) -m pip install -e '.[test]'

test:
	$(PYTHON) -m pytest tests/

# One-shot gate (CI runs this on every push/PR): the tier-1 suite plus
# a quick-size bench whose behavior fingerprints must match the
# committed baseline bit for bit — any simulated-outcome drift fails.
# The bench's churn scenarios (one per overlay) also report their
# rebuild/patch maintenance totals, and --check fails if any of them
# recorded zero patches: a regression to wholesale table rebuilds
# breaks the build even when behavior is unchanged.
# The bench runs with telemetry disabled (the default), so the
# fingerprint check doubles as the telemetry-and-audit-overhead gate:
# both layers must be invisible to an untraced run.  The quick suite
# includes the full-size flash-crowd-n2000 leg, which --check gates on
# a perf floor, on the covering index collapsing subscriptions on the
# Zipf workload, and on the covering run's delivery fingerprint
# equalling its uncollapsed reference leg bit for bit.  The last steps
# record an audited sample trace, assert its causal trees reconstruct
# (repro stats exits non-zero on an orphaned delivery), render the
# load-skew observatory report from the same trace (repro report — the
# hot-node/hot-key heatmap plus load-report.json), and render the
# audit health report (repro audit exits non-zero on any recorded
# invariant or delivery-correctness violation); everything generated
# lands under the ignored artifacts/ directory (the work tree stays
# clean) and CI uploads artifacts/sample-trace*.jsonl,
# artifacts/load-report.json, artifacts/audit-report*.txt and
# artifacts/shard-profile.txt as workflow artifacts.  The
# audited run is then repeated over the CAN overlay, whose probes also
# grade the routing fast path's express links and regenerated hop
# sequences.  The scale-bench smoke leg (4000 nodes, serial vs two
# forked shard workers) gates the sharded kernel the same way: its
# behavior digests must match the committed baseline bit for bit (the
# K=1 leg pins serial parity, the K=2 leg pins the deterministic
# barrier merge) and sharded throughput must stay above the
# CPU-availability-aware floor.  Its JSON goes to
# artifacts/BENCH_PR7_smoke.json (uploaded as a CI artifact; the
# committed BENCH_PR7.json is the full 20k/100k-node run and is not
# regenerated here).  A sharded smoke leg then runs with the execution
# profiler attached (--shard-profile): its v4 trace goes to
# artifacts/sample-trace-shard.jsonl (riding the sample-trace* upload)
# and the rendered critical-path report — per-shard busy/stall bars,
# laggard attribution, rebalance advisor — to
# artifacts/shard-profile.txt, uploaded as a workflow artifact.
# Finally the perf trajectory table aggregates every committed
# BENCH_PR*.json so a cross-PR events/s dip is visible in the CI log
# (informational; always exits 0).
verify:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -q
	mkdir -p artifacts
	PYTHONPATH=src $(PYTHON) benchmarks/bench_throughput.py --quick --repeat 3 \
		--baseline benchmarks/baselines/bench_quick_baseline.json --check
	PYTHONPATH=src $(PYTHON) benchmarks/bench_scale.py --scenario smoke \
		--repeat 2 --out artifacts/BENCH_PR7_smoke.json \
		--baseline benchmarks/baselines/bench_scale_baseline.json --check
	PYTHONPATH=src $(PYTHON) -m repro run --nodes 100 --subscriptions 50 \
		--publications 50 --audit \
		--telemetry artifacts/sample-trace.jsonl > /dev/null
	PYTHONPATH=src $(PYTHON) -m repro stats artifacts/sample-trace.jsonl
	PYTHONPATH=src $(PYTHON) -m repro report artifacts/sample-trace.jsonl \
		--json artifacts/load-report.json
	PYTHONPATH=src $(PYTHON) -m repro audit artifacts/sample-trace.jsonl \
		--report artifacts/audit-report.txt
	PYTHONPATH=src $(PYTHON) -m repro run --overlay can --nodes 100 \
		--subscriptions 50 --publications 50 --audit \
		--telemetry artifacts/sample-trace-can.jsonl > /dev/null
	PYTHONPATH=src $(PYTHON) -m repro audit artifacts/sample-trace-can.jsonl \
		--report artifacts/audit-report-can.txt
	PYTHONPATH=src $(PYTHON) -m repro run --nodes 4000 --subscriptions 400 \
		--publications 400 --shards 2 --shard-profile \
		--discretization 256 --cache 1024 --matcher vector \
		--telemetry artifacts/sample-trace-shard.jsonl > /dev/null
	PYTHONPATH=src $(PYTHON) -m repro report artifacts/sample-trace-shard.jsonl \
		--mode shard > artifacts/shard-profile.txt
	cat artifacts/shard-profile.txt
	PYTHONPATH=src $(PYTHON) benchmarks/trajectory.py

# Wall-clock throughput of the hot paths (routing, kernel, matching) on
# the fixed seeded workload; writes BENCH_PR1.json.  Pass
# BENCH_BASELINE=<old.json> to record a before/after delta.
bench:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_throughput.py \
		$(if $(BENCH_BASELINE),--baseline $(BENCH_BASELINE)) --out BENCH_PR1.json

bench-quick:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_throughput.py --quick \
		$(if $(BENCH_BASELINE),--baseline $(BENCH_BASELINE)) --out BENCH_PR1.json

# The sharded kernel at scale: 4k / 20k / 100k-node Chord rings, serial
# vs forked shard workers, with per-worker peak-RSS and bytes/node
# reporting; writes BENCH_PR7.json (the 100k leg replays 10^6
# publications — expect tens of minutes on a laptop-class machine).
bench-scale:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_scale.py \
		$(if $(BENCH_BASELINE),--baseline $(BENCH_BASELINE)) --out BENCH_PR7.json

# Perf trajectory across every committed BENCH_PR*.json snapshot:
# events/s and peak-RSS per scenario per PR, with cross-PR regressions
# flagged (latest < 0.9x previous).  Informational — always exits 0.
bench-trajectory:
	PYTHONPATH=src $(PYTHON) benchmarks/trajectory.py

# Regenerate the paper's figures (the simulated-outcome benchmarks).
bench-figs:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Approach the paper's 25 000-subscription memory runs (hours).
bench-paper:
	REPRO_BENCH_SCALE=8 $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

report:
	$(PYTHON) -m repro report --out-dir results --scale default

clean:
	rm -rf results .pytest_cache .benchmarks sample-trace.jsonl audit-report.txt \
		sample-trace-can.jsonl audit-report-can.txt BENCH_PR7_smoke.json \
		load-report.json
	find . -name __pycache__ -type d -exec rm -rf {} +
