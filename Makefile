# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test bench bench-paper examples report clean

install:
	$(PYTHON) -m pip install -e '.[test]'

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Approach the paper's 25 000-subscription memory runs (hours).
bench-paper:
	REPRO_BENCH_SCALE=8 $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

report:
	$(PYTHON) -m repro report --out-dir results --scale default

clean:
	rm -rf results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
