#!/usr/bin/env python3
"""Compare the three stateless mappings on one identical workload.

Replays the same pre-generated trace (Section 5.1 parameters) against
each mapping x {unicast, m-cast}, printing the per-request message
costs and storage footprint side by side — a miniature of the paper's
Fig. 5 plus the Section 5.2 cardinality narrative.

Run:
    python examples/mapping_comparison.py
"""

import random

from repro import (
    ChordOverlay,
    KeySpace,
    PubSubConfig,
    PubSubSystem,
    RoutingMode,
    Simulator,
    make_mapping,
)
from repro.experiments.report import render_table
from repro.overlay.api import MessageKind
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import Trace

MAPPINGS = ("attribute-split", "keyspace-split", "selective-attribute")


def main() -> None:
    keyspace = KeySpace(13)
    node_ids = random.Random(5).sample(range(keyspace.size), 300)
    spec = WorkloadSpec(subscription_ttl=None)
    trace = Trace.generate(
        spec,
        random.Random(6),
        node_ids,
        subscriptions=120,
        publications=120,
    )

    rows = []
    for mapping_name in MAPPINGS:
        for routing in (RoutingMode.UNICAST, RoutingMode.MCAST):
            sim = Simulator()
            overlay = ChordOverlay(sim, keyspace)
            overlay.build_ring(node_ids)
            mapping = make_mapping(mapping_name, trace.space, keyspace)
            system = PubSubSystem(
                sim, overlay, mapping, PubSubConfig(routing=routing)
            )
            trace.replay(system)
            messages = system.recorder.messages
            storage = system.subscriptions_per_node()
            keys_per_sub = sum(
                len(mapping.subscription_keys(op.subscription))
                for op in trace.ops
                if op.subscription is not None
            ) / 120
            rows.append(
                [
                    mapping_name,
                    routing.value,
                    round(keys_per_sub, 1),
                    messages.mean_hops_per_request(MessageKind.SUBSCRIPTION),
                    messages.mean_hops_per_request(MessageKind.PUBLICATION),
                    messages.mean_hops_per_request(MessageKind.NOTIFICATION),
                    max(storage.values(), default=0),
                ]
            )

    print(
        render_table(
            [
                "mapping",
                "routing",
                "keys/sub",
                "sub hops",
                "pub hops",
                "notify hops",
                "max subs/node",
            ],
            rows,
            title="identical 120-sub / 120-pub trace, 300-node ring",
        )
    )
    print(
        "\nshapes to look for (Fig. 5): unicast subscription cost is huge\n"
        "for Attribute-Split, ~10x smaller for Selective-Attribute and\n"
        "tiny for Key-Space-Split; m-cast collapses the difference."
    )


if __name__ == "__main__":
    main()
