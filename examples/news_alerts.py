#!/usr/bin/env python3
"""News alerts: the client facade, disjunctions and leased subscriptions.

A newswire publishes stories tagged with (category, region, urgency,
word count).  Readers express *disjunctive* interests — "breaking
politics OR anything about my region" — which the data model supports
by splitting into separate conjunctive subscriptions (Section 3.2);
the :class:`~repro.core.client.PubSubClient` performs the split and
de-duplicates, so a story matching both arms alerts once.  Reader
interests are installed as expiring leases with auto-renewal: when a
reader walks away (stops renewing), the rendezvous state garbage
collects itself — the paper's expiration mechanism used as a feature.

Run:
    python examples/news_alerts.py
"""

import random

from repro import (
    Attribute,
    ChordOverlay,
    EventSpace,
    KeySpace,
    PubSubSystem,
    Simulator,
    Subscription,
    make_mapping,
)
from repro.core import PubSubClient

ATTR_MAX = 1_000_000
CATEGORIES = ["politics", "sport", "business", "science", "weather"]
REGIONS = ["north", "south", "east", "west"]


def main() -> None:
    sim = Simulator()
    keyspace = KeySpace(13)
    overlay = ChordOverlay(sim, keyspace)
    rng = random.Random(31)
    overlay.build_ring(rng.sample(range(keyspace.size), 200))
    nodes = overlay.node_ids()

    # "category" and "region" are first-class string attributes: values
    # hash onto the numeric domain (paper footnote 2), and only equality
    # constraints are allowed on them.
    space = EventSpace(
        (
            Attribute("category", ATTR_MAX + 1, kind="string"),
            Attribute("region", ATTR_MAX + 1, kind="string"),
            Attribute("urgency", ATTR_MAX + 1),
            Attribute("words", ATTR_MAX + 1),
        )
    )
    system = PubSubSystem(
        sim, overlay, make_mapping("selective-attribute", space, keyspace)
    )

    # Reader 1: breaking politics OR anything from the north.
    reader1 = PubSubClient(system, nodes[5])
    alerts1 = []
    reader1.on_match(lambda event, interest: alerts1.append(event))
    # Partially defined subscriptions (Section 4.2): attributes a reader
    # does not care about are simply omitted.
    politics_breaking = Subscription.build(
        space, category="politics", urgency=(900_000, ATTR_MAX),
    )
    anything_north = Subscription.build(space, region="north")
    interest1 = reader1.subscribe_any([politics_breaking, anything_north])

    # Reader 2: a leased sport subscription, renewed automatically.
    reader2 = PubSubClient(system, nodes[9])
    alerts2 = []
    reader2.on_match(lambda event, interest: alerts2.append(event))
    sport = Subscription.build(space, category="sport")
    reader2.subscribe(sport, ttl=60.0, auto_renew=True)

    # Reader 3: same lease but never renewed — walks away.
    reader3 = PubSubClient(system, nodes[13])
    alerts3 = []
    reader3.on_match(lambda event, interest: alerts3.append(event))
    reader3.subscribe(
        Subscription.build(space, category="sport"),
        ttl=60.0,
        auto_renew=False,
    )
    sim.run_until(5.0)

    # The newswire: 300 stories over 10 simulated minutes.
    def story(category, region):
        return space.make_event(
            category=category,
            region=region,
            urgency=rng.randrange(ATTR_MAX),
            words=rng.randrange(ATTR_MAX),
        )

    t = sim.now
    for _ in range(300):
        t += 2.0
        event = story(rng.choice(CATEGORIES), rng.choice(REGIONS))
        sim.schedule_at(t, system.publish, rng.choice(nodes), event)
    sim.run_until(t + 60.0)

    # A story that hits BOTH arms of reader 1's disjunction: one alert.
    double_hit = space.make_event(
        category="politics", region="north",
        urgency=950_000, words=1200,
    )
    before = len(alerts1)
    system.publish(nodes[100], double_hit)
    sim.run_until(sim.now + 30.0)
    double_alerts = len(alerts1) - before

    print("after 300 stories plus one double-match probe:\n")
    print(f"  reader 1 (politics-breaking OR north): {len(alerts1):>4} alerts")
    print(f"    the double-match story alerted {double_alerts} time(s) "
          "(disjunction dedup)")
    print(f"  reader 2 (sport, leased + renewed):    {len(alerts2):>4} alerts")
    print(f"  reader 3 (sport, lease lapsed at 60s): {len(alerts3):>4} alerts")
    assert double_alerts == 1
    assert len(alerts2) > len(alerts3), "the lapsed lease must miss late stories"
    print("\nreader 3's rendezvous state expired on its own — unsubscription "
          "without an unsubscribe message (Section 5.1's expiration model).")


if __name__ == "__main__":
    main()
