#!/usr/bin/env python3
"""Self-organization, measured: protocol-level Chord building itself.

The paper's central selling point is that the pub/sub system inherits
the overlay's self-configuration: "the proposed architecture is the
first content-based pub/sub implementation not requiring any manual
configuration and management apart from the setup of an overlay network
itself."  This example runs the *actual* Chord maintenance protocol —
message-based joins, periodic stabilization, finger repair, successor
lists — and shows the ring assembling itself, absorbing crashes, and
what that autonomy costs in maintenance messages.

Run:
    python examples/self_organization.py
"""

import random

from repro.overlay.chord.protocol import ProtocolChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator


def ring_accuracy(overlay) -> float:
    """Fraction of nodes whose successor pointer is already correct."""
    ids = overlay.node_ids()
    if len(ids) < 2:
        return 1.0
    correct = sum(
        1 for node_id in ids
        if overlay.node(node_id).successor == overlay.ideal_successor(node_id)
    )
    return correct / len(ids)


def main() -> None:
    sim = Simulator()
    keyspace = KeySpace(13)
    overlay = ProtocolChordOverlay(
        sim, keyspace, stabilize_period=2.0, successor_list_size=4
    )
    rng = random.Random(77)
    ids = rng.sample(range(keyspace.size), 40)

    print("phase 1 — 40 nodes join through one bootstrap node\n")
    overlay.bootstrap(ids[0])
    for node_id in ids[1:]:
        overlay.join(node_id, bootstrap=ids[0])
    # All 40 joins fired concurrently: watch the ring organize itself.
    print(f"{'sim time [s]':>12}  {'correct successors':>19}  {'ctrl msgs':>10}")
    for _ in range(60):
        sim.run_until(sim.now + 4.0)
        accuracy = ring_accuracy(overlay)
        print(f"{sim.now:>12.0f}  {accuracy:>18.0%}  {overlay.control_messages():>10}")
        if accuracy == 1.0:
            break
    assert overlay.converged(), "ring failed to converge"

    print("\nphase 2 — crash 6 random nodes at once\n")
    before_msgs = overlay.control_messages()
    for victim in rng.sample(overlay.node_ids(), 6):
        overlay.crash(victim)
    print(f"{'sim time [s]':>12}  {'correct successors':>19}")
    for _ in range(30):
        sim.run_until(sim.now + 4.0)
        accuracy = ring_accuracy(overlay)
        print(f"{sim.now:>12.0f}  {accuracy:>18.0%}")
        if accuracy == 1.0:
            break
    assert overlay.converged(), "ring failed to heal after crashes"
    healing_msgs = overlay.control_messages() - before_msgs

    print(
        f"\nring healed via successor lists; {healing_msgs} maintenance "
        "messages during recovery."
    )
    print(
        "no human intervention at any point — the property the paper's "
        "pub/sub architecture inherits wholesale (Section 4.1)."
    )


if __name__ == "__main__":
    main()
