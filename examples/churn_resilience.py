#!/usr/bin/env python3
"""Self-configuration under churn (Section 4.1).

The paper's headline claim is that a content-based pub/sub built on a
structured overlay needs *no manual configuration*: when nodes join,
leave or crash, the KN-mapping adjusts automatically, stored
subscriptions follow their keys (state transfer), and replicas on ring
successors absorb crashes.  This example subjects a running system to
continuous churn — including crashes of the very nodes storing the
subscriptions — while a publisher keeps publishing matching events, and
reports how many notifications survive each phase.

Run:
    python examples/churn_resilience.py
"""

import random

from repro import (
    ChordOverlay,
    EventSpace,
    KeySpace,
    PubSubConfig,
    PubSubSystem,
    RoutingMode,
    Simulator,
    Subscription,
    make_mapping,
)

ATTR_MAX = 1_000_000


def main() -> None:
    sim = Simulator()
    keyspace = KeySpace(13)
    overlay = ChordOverlay(sim, keyspace)
    rng = random.Random(99)
    overlay.build_ring(rng.sample(range(keyspace.size), 250))

    space = EventSpace.uniform(("kind", "value", "region", "priority"), ATTR_MAX + 1)
    mapping = make_mapping("selective-attribute", space, keyspace)
    system = PubSubSystem(
        sim,
        overlay,
        mapping,
        PubSubConfig(
            routing=RoutingMode.MCAST,
            replication_factor=2,
            failure_detection_delay=0.3,
        ),
    )

    received = []
    system.set_global_notify_handler(lambda nid, ns: received.extend(ns))

    subscriber = overlay.node_ids()[0]
    sigma = Subscription.build(
        space,
        kind=(100_000, 101_000),          # selective: ~0.1% of the domain
        value=(0, ATTR_MAX),
        region=(400_000, 430_000),
        priority=(0, ATTR_MAX),
    )
    system.subscribe(subscriber, sigma)
    sim.run()

    def publish_matching():
        publisher = rng.choice(system.overlay.node_ids())
        system.publish(
            publisher,
            space.make_event(
                kind=rng.randint(100_000, 101_000),
                value=rng.randrange(ATTR_MAX),
                region=rng.randint(400_000, 430_000),
                priority=rng.randrange(ATTR_MAX),
            ),
        )
        sim.run_until(sim.now + 5.0)

    def rendezvous_holders():
        return [
            node_id
            for node_id in system.overlay.node_ids()
            if sigma.subscription_id in system.node(node_id).store
        ]

    phases = []

    # Phase 1: stable ring.
    before = len(received)
    for _ in range(5):
        publish_matching()
    phases.append(("stable ring", len(received) - before, 5))

    # Phase 2: 30 joins and 30 graceful leaves (state transfer at work).
    before = len(received)
    for round_number in range(30):
        candidate = rng.randrange(keyspace.size)
        if not system.overlay.is_alive(candidate):
            system.add_node(candidate)
        victim = rng.choice(
            [n for n in system.overlay.node_ids() if n != subscriber]
        )
        system.remove_node(victim)
        publish_matching()
    phases.append(("30 joins + 30 leaves", len(received) - before, 30))

    # Phase 3: crash every rendezvous node; replicas take over.
    before = len(received)
    crashes = 0
    for victim in rendezvous_holders():
        if victim != subscriber and len(system.overlay) > 3:
            system.crash_node(victim)
            crashes += 1
            sim.run_until(sim.now + 1.0)  # failure detection + promotion
    for _ in range(5):
        publish_matching()
    phases.append((f"crash all {crashes} rendezvous nodes", len(received) - before, 5))

    print(f"subscriber node: {subscriber}; replication factor 2\n")
    print(f"{'phase':<32}{'notifications':>15}{'publications':>14}")
    print("-" * 61)
    for label, delivered, published in phases:
        print(f"{label:<32}{delivered:>15}{published:>14}")
    survived = phases[-1][1]
    print(
        f"\nafter crashing every rendezvous node, {survived}/5 matching "
        "publications still reached the subscriber via promoted replicas"
    )


if __name__ == "__main__":
    main()
