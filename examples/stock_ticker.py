#!/usr/bin/env python3
"""Stock-ticker feed: notification buffering + collecting (Section 4.3.2).

A market-data stream is the paper's motivating case for buffering:
consecutive events exhibit temporal locality (a ticker's price moves in
small steps), so they keep matching the same subscriptions and land on
the same rendezvous nodes.  This example runs the same stream twice —
once with per-match immediate notifications, once with buffering and
collecting — and compares the notification traffic.

Run:
    python examples/stock_ticker.py
"""

import random

from repro import (
    ChordOverlay,
    EventSpace,
    KeySpace,
    PubSubConfig,
    PubSubSystem,
    RoutingMode,
    Simulator,
    Subscription,
    make_mapping,
)
from repro.core.events import hash_string_value
from repro.overlay.api import MessageKind

ATTR_MAX = 1_000_000
SYMBOLS = ["ACME", "GLOBEX", "INITECH", "HOOLI", "PIEDPIPER"]


def build_market(buffering: bool):
    sim = Simulator()
    keyspace = KeySpace(13)
    overlay = ChordOverlay(sim, keyspace, cache_capacity=0)
    overlay.build_ring(random.Random(11).sample(range(keyspace.size), 400))
    space = EventSpace.uniform(("symbol", "price", "volume", "venue"), ATTR_MAX + 1)
    mapping = make_mapping("selective-attribute", space, keyspace)
    config = PubSubConfig(
        routing=RoutingMode.MCAST,
        buffering=buffering,
        collecting=buffering,
        buffer_period=5.0,
    )
    return sim, overlay, space, PubSubSystem(sim, overlay, mapping, config)


def symbol_value(name: str) -> int:
    """Reduce a ticker symbol to a numeric attribute (paper footnote 2)."""
    return hash_string_value(name, ATTR_MAX + 1)


def run_stream(buffering: bool) -> dict:
    sim, overlay, space, system = build_market(buffering)
    nodes = overlay.node_ids()
    rng = random.Random(23)

    delivered = []
    system.set_global_notify_handler(
        lambda nid, ns: delivered.extend((nid, n) for n in ns)
    )

    # Traders watch a symbol within a price band (equality constraint on
    # the symbol: exactly the "selective attribute" of Mapping 3).
    for trader in range(25):
        symbol = rng.choice(SYMBOLS)
        center = rng.randint(100_000, 900_000)
        sigma = Subscription.build(
            space,
            symbol=symbol_value(symbol),
            price=(center - 60_000, center + 60_000),
            volume=(0, ATTR_MAX),
            venue=(0, ATTR_MAX),
        )
        system.subscribe(rng.choice(nodes), sigma)
    # run_until, not run(): with buffering on, periodic flush timers
    # keep the event queue non-empty forever.
    sim.run_until(sim.now + 10.0)

    # The feed: each symbol's price performs a small random walk; ticks
    # arrive every 500 ms for 500 simulated seconds.
    prices = {s: rng.randint(200_000, 800_000) for s in SYMBOLS}
    t = sim.now
    for _ in range(1000):
        t += 0.5
        symbol = rng.choice(SYMBOLS)
        prices[symbol] = min(
            ATTR_MAX, max(0, prices[symbol] + rng.randint(-3000, 3000))
        )
        event = space.make_event(
            symbol=symbol_value(symbol),
            price=prices[symbol],
            volume=rng.randint(0, ATTR_MAX),
            venue=rng.randrange(ATTR_MAX),
        )
        sim.schedule_at(t, system.publish, rng.choice(nodes), event)
    sim.run_until(t + 60.0)

    messages = system.recorder.messages
    return {
        "matches_delivered": len(delivered),
        "notification_msgs": messages.total_sends(MessageKind.NOTIFICATION),
        "collect_msgs": messages.total_sends(MessageKind.COLLECT),
        "batches": system.recorder.notification_batches,
    }


def main() -> None:
    immediate = run_stream(buffering=False)
    buffered = run_stream(buffering=True)

    print("1000 ticks, 25 traders, 400 nodes\n")
    print(f"{'':28}{'immediate':>12}{'buffered+collect':>18}")
    for key, label in [
        ("matches_delivered", "matches delivered"),
        ("batches", "notification batches"),
        ("notification_msgs", "notification one-hop msgs"),
        ("collect_msgs", "collect one-hop msgs"),
    ]:
        print(f"{label:28}{immediate[key]:>12}{buffered[key]:>18}")
    total_imm = immediate["notification_msgs"] + immediate["collect_msgs"]
    total_buf = buffered["notification_msgs"] + buffered["collect_msgs"]
    if total_imm:
        saving = 100 * (1 - total_buf / total_imm)
        print(f"\nnotification traffic saved by buffering+collecting: {saving:.0f}%")


if __name__ == "__main__":
    main()
