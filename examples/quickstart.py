#!/usr/bin/env python3
"""Quickstart: content-based pub/sub over a simulated Chord ring.

Builds a 500-node overlay (the paper's default), installs a few range
subscriptions, publishes events, and prints the notifications each
subscriber receives plus the message-cost accounting that the paper's
evaluation is built on.

Run:
    python examples/quickstart.py
"""

from repro import (
    ChordOverlay,
    EventSpace,
    KeySpace,
    PubSubConfig,
    PubSubSystem,
    RoutingMode,
    Simulator,
    Subscription,
    make_mapping,
)
from repro.overlay.api import MessageKind
from repro.sim import RandomStreams


def main() -> None:
    # 1. The simulation substrate: a kernel and a 2^13-key Chord ring.
    sim = Simulator()
    keyspace = KeySpace(13)
    overlay = ChordOverlay(sim, keyspace)
    rng = RandomStreams(7).stream("ring")
    overlay.build_ring(rng.sample(range(keyspace.size), 500))
    nodes = overlay.node_ids()

    # 2. The event space and the ak-mapping (Mapping 3 of the paper).
    space = EventSpace.uniform(("symbol", "price", "volume", "venue"), 1_000_001)
    mapping = make_mapping("selective-attribute", space, keyspace)

    # 3. The pub/sub layer, propagating multi-key requests with m-cast.
    system = PubSubSystem(
        sim, overlay, mapping, PubSubConfig(routing=RoutingMode.MCAST)
    )

    # 4. Subscribers: register interest and a notification handler.
    def handler(node_id, notifications):
        for n in notifications:
            print(
                f"  node {node_id:>4} notified: event {n.event.as_dict()} "
                f"(subscription {n.subscription_id}, matched at node {n.matched_at})"
            )

    system.set_global_notify_handler(handler)

    cheap_tech = Subscription.build(
        space, symbol=(0, 1000), price=(0, 150_000), volume=(0, 1_000_000),
        venue=(0, 1_000_000),
    )
    any_big_trade = Subscription.build(
        space, symbol=(0, 1_000_000), price=(0, 1_000_000),
        volume=(900_000, 1_000_000), venue=(0, 1_000_000),
    )
    system.subscribe(nodes[10], cheap_tech)
    system.subscribe(nodes[20], any_big_trade)
    sim.run()  # let the subscriptions reach their rendezvous nodes

    # 5. Publishers: three events, two of which match something.
    print("publishing three events...")
    system.publish(nodes[100], space.make_event(
        symbol=500, price=120_000, volume=3_000, venue=42))        # cheap_tech
    system.publish(nodes[200], space.make_event(
        symbol=999_999, price=880_000, volume=950_000, venue=7))   # any_big_trade
    system.publish(nodes[300], space.make_event(
        symbol=500_000, price=500_000, volume=500_000, venue=0))   # no match
    sim.run()

    # 6. The paper's accounting: one-hop messages per request kind.
    messages = system.recorder.messages
    print("\nmessage accounting (one-hop messages per request):")
    for kind in (MessageKind.SUBSCRIPTION, MessageKind.PUBLICATION,
                 MessageKind.NOTIFICATION):
        print(
            f"  {kind.value:>13}: {len(messages.requests_of_kind(kind))} requests, "
            f"mean {messages.mean_hops_per_request(kind):.1f} hops each"
        )
    print(f"\nsimulated time elapsed: {sim.now:.2f} s "
          f"({sim.events_processed} kernel events)")


if __name__ == "__main__":
    main()
