#!/usr/bin/env python3
"""Sensor network: mapping discretization (Section 4.3.3) in action.

A field of temperature/humidity sensors publishes readings; monitoring
stations subscribe to ranges ("temperature between 30 and 35 degrees in
sector 12").  Wide range subscriptions are exactly where Attribute-Split
and Selective-Attribute map a subscription to many keys — and where
discretizing the mapping slashes the subscription-propagation cost
without losing a single notification (the intersection rule holds for
any interval width because events quantize identically).

Run:
    python examples/sensor_network.py
"""

import random

from repro import (
    ChordOverlay,
    Discretization,
    EventSpace,
    KeySpace,
    PubSubConfig,
    PubSubSystem,
    RoutingMode,
    Simulator,
    Subscription,
    make_mapping,
)
from repro.overlay.api import MessageKind

ATTR_MAX = 1_000_000  # raw sensor units; e.g. milli-degrees / milli-%RH


def run_field(interval_width: int) -> dict:
    sim = Simulator()
    keyspace = KeySpace(13)
    overlay = ChordOverlay(sim, keyspace, cache_capacity=0)
    overlay.build_ring(random.Random(3).sample(range(keyspace.size), 300))
    nodes = overlay.node_ids()
    rng = random.Random(17)

    space = EventSpace.uniform(
        ("temperature", "humidity", "sector", "battery"), ATTR_MAX + 1
    )
    mapping = make_mapping(
        "selective-attribute",
        space,
        keyspace,
        discretization=Discretization.uniform(space.dimensions, interval_width),
    )
    system = PubSubSystem(
        sim, overlay, mapping, PubSubConfig(routing=RoutingMode.UNICAST)
    )

    alerts = []
    system.set_global_notify_handler(lambda nid, ns: alerts.extend(ns))

    # Monitoring stations: each watches a temperature band in a sector.
    stations = []
    for _ in range(40):
        sector = rng.randrange(0, ATTR_MAX, ATTR_MAX // 100)  # 100 sectors
        low = rng.randint(0, ATTR_MAX - 40_000)
        sigma = Subscription.build(
            space,
            temperature=(low, low + 40_000),
            humidity=(0, ATTR_MAX),
            sector=(sector, sector + ATTR_MAX // 100 - 1),
            battery=(0, ATTR_MAX),
        )
        stations.append(sigma)
        system.subscribe(rng.choice(nodes), sigma)
    sim.run()

    # Sensors: 600 readings, half of them crafted to hit some station.
    hits_expected = 0
    for _ in range(600):
        if rng.random() < 0.5:
            target = rng.choice(stations)
            reading = space.make_event(
                temperature=rng.randint(
                    target.constraint_on(0).low, target.constraint_on(0).high
                ),
                humidity=rng.randrange(ATTR_MAX),
                sector=rng.randint(
                    target.constraint_on(2).low, target.constraint_on(2).high
                ),
                battery=rng.randrange(ATTR_MAX),
            )
            hits_expected += 1
        else:
            reading = space.make_event(
                temperature=rng.randrange(ATTR_MAX),
                humidity=rng.randrange(ATTR_MAX),
                sector=rng.randrange(ATTR_MAX),
                battery=rng.randrange(ATTR_MAX),
            )
        system.publish(rng.choice(nodes), reading)
    sim.run()

    messages = system.recorder.messages
    keys_per_sub = sum(
        len(mapping.subscription_keys(s)) for s in stations
    ) / len(stations)
    return {
        "alerts": len(alerts),
        "hits_expected_at_least": hits_expected,
        "keys_per_sub": keys_per_sub,
        "sub_hops": messages.mean_hops_per_request(MessageKind.SUBSCRIPTION),
        "pub_hops": messages.mean_hops_per_request(MessageKind.PUBLICATION),
    }


def main() -> None:
    # Interval widths: none, then 10% and 20% of the 40k range width.
    widths = [1, 4_000, 8_000]
    results = {w: run_field(w) for w in widths}

    print("40 stations, 600 sensor readings, 300 nodes, Mapping 3 + unicast\n")
    header = f"{'discretization width':>22}" + "".join(f"{w:>12}" for w in widths)
    print(header)
    print("-" * len(header))
    for key, label in [
        ("keys_per_sub", "keys per subscription"),
        ("sub_hops", "hops per subscription"),
        ("pub_hops", "hops per publication"),
        ("alerts", "alerts delivered"),
    ]:
        row = f"{label:>22}"
        for w in widths:
            value = results[w][key]
            row += f"{value:>12.1f}" if isinstance(value, float) else f"{value:>12}"
        print(row)
    baseline = results[1]
    for w in widths[1:]:
        assert results[w]["alerts"] >= baseline["alerts"], (
            "discretization must not lose notifications"
        )
    print(
        "\ncoarser intervals cut subscription cost while delivering the "
        "same alerts (intersection rule is width-independent)"
    )


if __name__ == "__main__":
    main()
